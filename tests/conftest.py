"""Shared fixtures.

Session-scoped fixtures build the (deterministic) SCIONLab world and a
small measured campaign once; tests that mutate state build their own
objects instead.
"""

from __future__ import annotations

import pytest

from repro.docdb.client import DocDBClient
from repro.experiments.world import run_campaign
from repro.scion.snet import ScionHost
from repro.suite.cli import seed_servers
from repro.suite.config import SuiteConfig
from tests.helpers import build_tiny_world


TEST_SEED = 424242


@pytest.fixture(scope="session")
def tiny_topology():
    return build_tiny_world()


@pytest.fixture(scope="session")
def tiny_host(tiny_topology):
    return ScionHost(tiny_topology, "1-ffaa:1:1")


@pytest.fixture(scope="session")
def world_host():
    """The canonical SCIONLab world (read-only use!)."""
    return ScionHost.scionlab(seed=TEST_SEED)


@pytest.fixture()
def fresh_world_host():
    """A SCIONLab host tests may freely mutate (episodes, health, clock)."""
    return ScionHost.scionlab(seed=TEST_SEED)


@pytest.fixture(scope="session")
def measured_world():
    """A small but complete campaign: Ireland + Magdeburg, 2 iterations."""
    return run_campaign([1, 3], iterations=2, seed=TEST_SEED)


@pytest.fixture()
def seeded_db():
    """A fresh database with the availableServers collection populated."""
    client = DocDBClient()
    db = client["upin"]
    seed_servers(db)
    return db
