"""Unit tests for bandwidth/duration parsing (repro.util.units)."""

import pytest

from repro.errors import ValidationError
from repro.util.units import (
    Bandwidth,
    Duration,
    format_bandwidth,
    format_duration,
    parse_bandwidth,
    parse_duration,
)


class TestParseBandwidth:
    def test_mbps(self):
        assert parse_bandwidth("12Mbps").mbps == pytest.approx(12.0)

    def test_the_paper_values(self):
        assert parse_bandwidth("150Mbps").bps == pytest.approx(150e6)

    def test_kbps(self):
        assert parse_bandwidth("500kbps").bps == pytest.approx(5e5)

    def test_gbps(self):
        assert parse_bandwidth("1.5Gbps").bps == pytest.approx(1.5e9)

    def test_bare_bps(self):
        assert parse_bandwidth("900bps").bps == pytest.approx(900.0)

    def test_case_insensitive_unit(self):
        assert parse_bandwidth("3mBpS").mbps == pytest.approx(3.0)

    def test_whitespace_tolerated(self):
        assert parse_bandwidth("  7 Mbps ").mbps == pytest.approx(7.0)

    def test_decimal_value(self):
        assert parse_bandwidth("0.5Mbps").kbps == pytest.approx(500.0)

    def test_idempotent_on_bandwidth(self):
        bw = Bandwidth(1e6)
        assert parse_bandwidth(bw) is bw

    @pytest.mark.parametrize("bad", ["", "Mbps", "12", "12 M b", "twelveMbps", "12Xbps"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValidationError):
            parse_bandwidth(bad)


class TestParseDuration:
    def test_paper_interval(self):
        assert parse_duration("0.1s").seconds == pytest.approx(0.1)

    def test_milliseconds(self):
        assert parse_duration("250ms").seconds == pytest.approx(0.25)

    def test_bare_number_is_seconds(self):
        assert parse_duration("3").seconds == pytest.approx(3.0)

    def test_minutes(self):
        assert parse_duration("2m").seconds == pytest.approx(120.0)

    def test_microseconds(self):
        assert parse_duration("100us").seconds == pytest.approx(1e-4)

    @pytest.mark.parametrize("bad", ["", "s", "1x", "-3s"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValidationError):
            parse_duration(bad)


class TestValueObjects:
    def test_bandwidth_ordering(self):
        assert Bandwidth(1e6) < Bandwidth(2e6)

    def test_bandwidth_arithmetic(self):
        assert (Bandwidth(1e6) + Bandwidth(2e6)).mbps == pytest.approx(3.0)
        assert (Bandwidth(2e6) - Bandwidth(5e6)).bps == 0.0  # clamps at zero
        assert (2 * Bandwidth(1e6)).mbps == pytest.approx(2.0)

    def test_bandwidth_rejects_negative(self):
        with pytest.raises(ValidationError):
            Bandwidth(-1.0)

    def test_duration_rejects_negative(self):
        with pytest.raises(ValidationError):
            Duration(-0.1)

    def test_duration_arithmetic(self):
        assert (Duration(1.0) + Duration(0.5)).seconds == pytest.approx(1.5)
        assert (Duration(2.0) * 3).seconds == pytest.approx(6.0)

    def test_duration_ms_property(self):
        assert Duration(0.25).ms == pytest.approx(250.0)


class TestFormatting:
    def test_format_bandwidth_picks_unit(self):
        assert format_bandwidth(Bandwidth(12e6)) == "12.00Mbps"
        assert format_bandwidth(Bandwidth(1.5e9)) == "1.50Gbps"
        assert format_bandwidth(Bandwidth(900)) == "900bps"

    def test_format_roundtrip(self):
        original = Bandwidth(150e6)
        assert parse_bandwidth(format_bandwidth(original)).bps == pytest.approx(
            original.bps
        )

    def test_format_duration_sub_second(self):
        assert format_duration(Duration(0.1)) == "100.000ms"

    def test_format_duration_seconds(self):
        assert format_duration(Duration(3.0)) == "3.000s"

    def test_format_duration_zero(self):
        assert format_duration(Duration(0.0)) == "0s"

    def test_str_dunder(self):
        assert str(Bandwidth(12e6)) == "12.00Mbps"
        assert str(Duration(3.0)) == "3.000s"
