"""Tests for clock, events, processes and packet math (repro.netsim)."""

import pytest

from repro.errors import ValidationError
from repro.netsim.clock import SimClock
from repro.netsim.config import UtilizationParams
from repro.netsim.events import EventQueue
from repro.netsim.packet import (
    DEFAULT_UNDERLAY_MTU,
    OVERLAY_HEADER_BYTES,
    PacketSpec,
    fragment_count,
    scion_header_bytes,
    wire_size_bytes,
)
from repro.netsim.procs import UtilizationProcess
from repro.util.rng import RngStreams


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_s == 0.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now_s == 1.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValidationError):
            SimClock().advance(-1)

    def test_advance_to_never_goes_back(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)
        assert clock.now_s == 10.0
        clock.advance_to(12.0)
        assert clock.now_s == 12.0

    def test_now_ms(self):
        assert SimClock(1.5).now_ms == 1500


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        clock = SimClock()
        q = EventQueue(clock)
        fired = []
        q.schedule(2.0, lambda: fired.append("b"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.run_all()
        assert fired == ["a", "b"]
        assert clock.now_s == 2.0

    def test_ties_break_by_insertion_order(self):
        q = EventQueue(SimClock())
        fired = []
        for tag in "xyz":
            q.schedule(1.0, lambda t=tag: fired.append(t))
        q.run_all()
        assert fired == ["x", "y", "z"]

    def test_schedule_in_past_rejected(self):
        clock = SimClock(5.0)
        q = EventQueue(clock)
        with pytest.raises(ValidationError):
            q.schedule(4.0, lambda: None)

    def test_cancellation(self):
        q = EventQueue(SimClock())
        fired = []
        handle = q.schedule(1.0, lambda: fired.append("no"))
        handle.cancel()
        q.run_all()
        assert fired == []
        assert handle.cancelled

    def test_run_until_partial(self):
        clock = SimClock()
        q = EventQueue(clock)
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.schedule(3.0, lambda: fired.append(3))
        count = q.run_until(2.0)
        assert count == 1 and fired == [1]
        assert clock.now_s == 2.0
        assert len(q) == 1

    def test_events_can_schedule_events(self):
        clock = SimClock()
        q = EventQueue(clock)
        fired = []

        def first():
            fired.append("first")
            q.schedule_in(1.0, lambda: fired.append("second"))

        q.schedule(1.0, first)
        q.run_all()
        assert fired == ["first", "second"]
        assert clock.now_s == 2.0

    def test_runaway_backstop(self):
        q = EventQueue(SimClock())

        def reschedule():
            q.schedule_in(0.001, reschedule)

        q.schedule(0.0, reschedule)
        with pytest.raises(ValidationError):
            q.run_all(max_events=100)


class TestUtilizationProcess:
    def _proc(self, **kw):
        params = UtilizationParams(**kw)
        return UtilizationProcess(params, RngStreams(1).get("u"))

    def test_values_within_bounds(self):
        proc = self._proc(mean=0.5, sigma=0.5, floor=0.1, ceil=0.9)
        values = [proc.value_at(t) for t in range(200)]
        assert all(0.1 <= v <= 0.9 for v in values)

    def test_query_order_independent(self):
        a = self._proc()
        forward = [a.value_at(t) for t in (0, 5, 10)]
        b = self._proc()
        backward = [b.value_at(t) for t in (10, 5, 0)]
        assert forward == backward[::-1]

    def test_same_step_same_value(self):
        proc = self._proc(step_s=1.0)
        assert proc.value_at(3.1) == proc.value_at(3.9)

    def test_mean_over_window(self):
        proc = self._proc()
        m = proc.mean_over(0.0, 10.0)
        values = [proc.value_at(t) for t in range(11)]
        assert m == pytest.approx(sum(values) / len(values))

    def test_negative_time_rejected(self):
        with pytest.raises(ValidationError):
            self._proc().value_at(-1.0)

    def test_bad_window_rejected(self):
        with pytest.raises(ValidationError):
            self._proc().mean_over(5.0, 1.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValidationError):
            self._proc(rho=1.0)
        with pytest.raises(ValidationError):
            self._proc(floor=0.5, ceil=0.2)
        with pytest.raises(ValidationError):
            self._proc(step_s=0.0)


class TestPacketMath:
    def test_header_grows_with_hops(self):
        assert scion_header_bytes(7) > scion_header_bytes(5)
        assert scion_header_bytes(7) - scion_header_bytes(5) == 24  # 2 hop fields

    def test_header_grows_with_segments(self):
        assert scion_header_bytes(5, 3) - scion_header_bytes(5, 2) == 8

    def test_wire_size_composition(self):
        assert wire_size_bytes(64, 6) == 64 + scion_header_bytes(6) + OVERLAY_HEADER_BYTES

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValidationError):
            wire_size_bytes(-1, 5)
        with pytest.raises(ValidationError):
            scion_header_bytes(-1)

    def test_small_packet_single_fragment(self):
        assert fragment_count(200) == 1

    def test_boundary_exact_mtu(self):
        assert fragment_count(DEFAULT_UNDERLAY_MTU) == 1
        assert fragment_count(DEFAULT_UNDERLAY_MTU + 1) == 2

    def test_mtu_payload_fragments(self):
        """The Fig 7/8 mechanism: MTU payload + headers exceeds underlay MTU."""
        spec = PacketSpec(payload_bytes=1472, n_hops=6)
        assert spec.fragments == 2

    def test_64b_payload_does_not_fragment(self):
        spec = PacketSpec(payload_bytes=64, n_hops=8)
        assert spec.fragments == 1

    def test_goodput_fraction_small_packets_poor(self):
        small = PacketSpec(payload_bytes=64, n_hops=6)
        big = PacketSpec(payload_bytes=1472, n_hops=6)
        assert small.goodput_fraction < 0.45
        assert big.goodput_fraction > 0.85

    def test_total_wire_bytes_counts_fragment_headers(self):
        spec = PacketSpec(payload_bytes=1472, n_hops=6)
        assert spec.total_wire_bytes == spec.wire_bytes + 20

    def test_absurd_mtu_rejected(self):
        with pytest.raises(ValidationError):
            fragment_count(1000, underlay_mtu=10)
