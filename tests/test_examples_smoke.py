"""Smoke tests: every example script must run end to end.

Examples are documentation that executes; these tests keep them from
rotting.  Each runs in-process via runpy with stdout captured.
"""

import runpy
import sys

import pytest

EXAMPLES = [
    ("quickstart.py", [], "Done. Everything above is deterministic"),
    ("attach_user_as.py", [], "certificate chain verifies"),
    ("sovereignty_routing.py", [], "Recommendation menu"),
    ("upin_frontend_demo.py", [], "Installed flows"),
    ("fault_injection.py", [], "campaign completed despite everything"),
    ("measurement_campaign.py", ["2"], "campaign:"),
    ("continuous_monitoring.py", [], "retention: pruned"),
]


@pytest.mark.parametrize("script,argv,expected", EXAMPLES,
                         ids=[e[0] for e in EXAMPLES])
def test_example_runs(script, argv, expected, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script] + argv)
    runpy.run_path(f"examples/{script}", run_name="__main__")
    out = capsys.readouterr().out
    assert expected.lower() in out.lower()
