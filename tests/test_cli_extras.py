"""Tests for the JSON showpaths output and the signed-campaign CLI flag."""

import json

import pytest

from repro.apps.cli import main as scion_main
from repro.docdb.auth import SIGNATURE_FIELD
from repro.docdb.client import DocDBClient
from repro.suite.cli import main as suite_main


class TestShowpathsJson:
    def test_json_output_parses(self, capsys):
        assert (
            scion_main(
                ["showpaths", "19-ffaa:0:1303", "-m", "3", "--extended",
                 "--format", "json"]
            )
            == 0
        )
        data = json.loads(capsys.readouterr().out)
        assert data["destination"] == "19-ffaa:0:1303"
        assert len(data["paths"]) == 3
        first = data["paths"][0]
        assert first["hop_count"] == 5
        assert first["mtu"] == 1472
        assert first["sequence"].count("#") == 5
        assert first["isds"] == [17, 19]

    def test_json_and_text_agree_on_paths(self, capsys):
        scion_main(["showpaths", "19-ffaa:0:1303", "-m", "4", "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        scion_main(["showpaths", "19-ffaa:0:1303", "-m", "4"])
        text = capsys.readouterr().out
        for entry in data["paths"]:
            assert entry["hops"] in text


class TestSignedCampaignCli:
    def test_sign_flag_stores_signed_documents(self, capsys, tmp_path):
        db_dir = str(tmp_path / "db")
        assert suite_main(["1", "--some_only", "--sign", "--db-dir", db_dir]) == 0
        out = capsys.readouterr().out
        assert "signing stats as 17-ffaa:1:e01" in out
        assert "PKC verified" in out
        restored = DocDBClient.load_from(db_dir)
        docs = restored["upin"]["paths_stats"].find()
        assert docs
        assert all(SIGNATURE_FIELD in d for d in docs)

    def test_unsigned_campaign_has_no_signatures(self, capsys):
        assert suite_main(["1", "--some_only"]) == 0
        # (fresh in-memory db each invocation; nothing to assert beyond rc)


class TestDurableCampaignCli:
    def test_durability_requires_db_dir(self, capsys):
        assert suite_main(["1", "--some_only", "--durability", "batch"]) == 2
        assert "--durability requires --db-dir" in capsys.readouterr().err

    def test_durable_campaign_checkpoints_and_recovers(self, capsys, tmp_path):
        db_dir = str(tmp_path / "db")
        assert (
            suite_main(
                ["1", "--some_only", "--db-dir", db_dir,
                 "--durability", "batch", "--metrics"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "durable database: wal fsync=batch" in out
        assert "wal:" in out  # the --metrics WAL block
        assert "database checkpointed under" in out
        # The campaign's documents survive a fresh recovery.
        recovered = DocDBClient.open(db_dir)
        assert recovered.recovery_report.records_replayed == 0  # checkpointed
        assert len(recovered["upin"]["paths_stats"]) > 0
        assert len(recovered["upin"]["paths"]) > 0
        recovered.close()
