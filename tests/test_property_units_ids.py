"""Property-based tests: value objects and identifiers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.isd_as import ISDAS
from repro.util.geo import GeoPoint, haversine_km, propagation_delay_ms
from repro.util.rng import derive_seed
from repro.util.units import (
    Bandwidth,
    Duration,
    format_bandwidth,
    format_duration,
    parse_bandwidth,
    parse_duration,
)

bandwidths = st.floats(min_value=1.0, max_value=1e12, allow_nan=False)
durations = st.floats(min_value=1e-6, max_value=1e5, allow_nan=False)
isd_numbers = st.integers(min_value=0, max_value=0xFFFF)
as_numbers = st.integers(min_value=0, max_value=(1 << 48) - 1)
lats = st.floats(min_value=-90, max_value=90, allow_nan=False)
lons = st.floats(min_value=-180, max_value=180, allow_nan=False)


class TestUnitsProperties:
    @given(bandwidths)
    def test_bandwidth_format_parse_roundtrip(self, bps):
        original = Bandwidth(bps)
        parsed = parse_bandwidth(format_bandwidth(original, digits=6))
        assert abs(parsed.bps - original.bps) <= max(1.0, 1e-5 * original.bps)

    @given(durations)
    def test_duration_format_parse_roundtrip(self, seconds):
        original = Duration(seconds)
        parsed = parse_duration(format_duration(original, digits=9))
        assert abs(parsed.seconds - original.seconds) <= max(
            1e-9, 1e-6 * original.seconds
        )

    @given(bandwidths, bandwidths)
    def test_bandwidth_order_consistent_with_bps(self, a, b):
        assert (Bandwidth(a) < Bandwidth(b)) == (a < b)

    @given(bandwidths, st.floats(min_value=0, max_value=100, allow_nan=False))
    def test_scaling_linear(self, bps, factor):
        assert (factor * Bandwidth(bps)).bps == bps * factor


class TestIsdAsProperties:
    @given(isd_numbers, as_numbers)
    def test_roundtrip_all_values(self, isd, asn):
        ia = ISDAS(isd=isd, asn=asn)
        assert ISDAS.parse(str(ia)) == ia

    @given(
        isd_numbers,
        as_numbers,
        st.lists(
            st.integers(min_value=0, max_value=255), min_size=4, max_size=4
        ).map(lambda octets: ".".join(str(o) for o in octets)),
    )
    def test_address_roundtrip(self, isd, asn, ip):
        ia = ISDAS(isd=isd, asn=asn)
        parsed_ia, parsed_ip = ISDAS.parse_address(ia.address(ip))
        assert parsed_ia == ia and parsed_ip == ip

    @given(st.lists(st.tuples(isd_numbers, as_numbers), min_size=1, max_size=20))
    def test_sort_order_total(self, pairs):
        items = [ISDAS(isd=i, asn=a) for i, a in pairs]
        ordered = sorted(items)
        assert sorted(ordered, key=lambda x: (x.isd, x.asn)) == ordered


class TestGeoProperties:
    @given(lats, lons, lats, lons)
    def test_haversine_symmetric_nonnegative(self, lat1, lon1, lat2, lon2):
        a, b = GeoPoint(lat1, lon1), GeoPoint(lat2, lon2)
        assert haversine_km(a, b) >= 0
        assert abs(haversine_km(a, b) - haversine_km(b, a)) < 1e-6

    @given(lats, lons, lats, lons)
    def test_distance_bounded_by_half_circumference(self, lat1, lon1, lat2, lon2):
        d = haversine_km(GeoPoint(lat1, lon1), GeoPoint(lat2, lon2))
        assert d <= 20_037.6  # pi * R

    @given(lats, lons, lats, lons)
    def test_propagation_delay_has_floor(self, lat1, lon1, lat2, lon2):
        delay = propagation_delay_ms(GeoPoint(lat1, lon1), GeoPoint(lat2, lon2))
        assert delay >= 0.05


class TestSeedProperties:
    @given(st.integers(), st.text(max_size=50))
    def test_derive_seed_in_range_and_stable(self, root, name):
        seed = derive_seed(root, name)
        assert 0 <= seed < 2**64
        assert seed == derive_seed(root, name)
