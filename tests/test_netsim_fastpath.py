"""The vectorized measurement fast path and its determinism contract.

Covers the batch engine end to end:

* seeded determinism of :func:`repro.netsim.batch.probe_batch` (same
  seed ⇒ byte-identical rtt vectors, property-tested over seeds),
* batch/scalar statistical agreement on mean RTT and loss fraction at
  count ≥ 1000,
* monitor-revocation blackholes drop 100 % of batch probes too,
* ``scalar_fallback=True`` reproduces the pre-batch campaign
  byte-for-byte (pinned sha256 golden),
* a seeded traceroute golden pinning ``probe_partial``'s interleaved
  stream semantics,
* the flow ledger staying bounded under ``register_flow=True``,
* the sciond sequence index (no recombination on repeated lookups),
* the link sampling cache (hits + epoch invalidation),
* NET_* counters flowing into campaign metric snapshots.
"""

import hashlib
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docdb.client import DocDBClient
from repro.errors import ValidationError
from repro.monitor.revocation import Revocation, RevocationStore
from repro.netsim.batch import probe_batch, roundtrip_steps
from repro.netsim.config import NetworkConfig
from repro.netsim.congestion import CongestionEpisode
from repro.netsim.link import LinkDirection
from repro.netsim.network import LinkTraversal, NetworkSim
from repro.netsim.packet import PacketSpec
from repro.scion.snet import ScionHost
from repro.scionlab.defaults import study_destination_ids
from repro.suite import metrics as m
from repro.suite.cli import seed_servers
from repro.suite.collect import PathsCollector
from repro.suite.config import STATS_COLLECTION, SuiteConfig
from repro.suite.runner import TestRunner
from repro.topology.isd_as import ISDAS
from repro.topology.scionlab import (
    MY_AS,
    build_scionlab_world,
    scionlab_network_config,
)

from tests.helpers import build_tiny_world

FAST_SETTINGS = settings(max_examples=10, deadline=None)
SLOW_SETTINGS = settings(max_examples=5, deadline=None)

#: sha256 over the sorted stats documents of the seeded study campaign
#: (seed 20231112, 1 iteration, 5 destinations, 80 docs), captured on
#: the packet-at-a-time data plane *before* the batch engine landed.
PRE_BATCH_CAMPAIGN_SHA256 = (
    "0c83761f92109849855e8015ebde47c1e52ab0b25c30fc017ff058af5bdf62e3"
)

#: Seeded traceroute golden (ScionHost.scionlab(seed=7), best path to
#: 16-ffaa:0:1002), captured before this PR.  Pins ``probe_partial``'s
#: interleaved per-link stream consumption — see its docstring.
TRACEROUTE_GOLDEN = [
    (1, "17-ffaa:0:1107", 3, [9.358807, 9.499288, 9.779065]),
    (2, "17-ffaa:0:1102", 2, [10.614123, 10.734314, 10.328839]),
    (3, "19-ffaa:0:1301", 4, [19.73079, 20.690527, 19.938622]),
    (4, "16-ffaa:0:1001", 7, [24.763844, 25.496291, 25.290918]),
    (5, "16-ffaa:0:1002", 1, [40.266703, 42.175547, 41.283817]),
]


def _path_user_to_leaf(topology):
    """user -> ap -> core1a -> core2 -> leaf as LinkTraversals."""
    hops = ["1-ffaa:1:1", "1-ffaa:0:3", "1-ffaa:0:1", "2-ffaa:0:1", "2-ffaa:0:2"]
    steps = []
    for a, b in zip(hops, hops[1:]):
        link = topology.link_between(a, b)[0]
        steps.append(LinkTraversal(link=link, sender=ISDAS.parse(a)))
    return steps


def _packet(n_hops=5):
    return PacketSpec(payload_bytes=16, n_hops=n_hops, n_segments=2)


def _fresh_net(seed, **config_kwargs):
    return NetworkSim(build_tiny_world(), NetworkConfig(seed=seed, **config_kwargs))


# -- shape + bookkeeping -------------------------------------------------------


class TestBatchSeriesShape:
    def test_validation(self):
        net = _fresh_net(7)
        steps = _path_user_to_leaf(net.topology)
        with pytest.raises(ValidationError):
            probe_batch(net, [], _packet(), 10, 0.1, 0.0)
        with pytest.raises(ValidationError):
            probe_batch(net, steps, _packet(), 0, 0.1, 0.0)
        with pytest.raises(ValidationError):
            probe_batch(net, steps, _packet(), 10, 0.0, 0.0)

    def test_send_times_and_alignment(self):
        net = _fresh_net(7)
        steps = _path_user_to_leaf(net.topology)
        series = net.probe_batch(steps, _packet(), 30, 0.1, 5.0)
        assert series.count == 30
        assert series.send_times_s[0] == pytest.approx(5.0)
        assert series.send_times_s[-1] == pytest.approx(5.0 + 29 * 0.1)
        assert series.rtt_ms.shape == series.send_times_s.shape
        assert series.received == 30 - int(np.count_nonzero(series.lost_mask))
        assert len(series.received_rtts()) == series.received

    def test_roundtrip_steps_mirror(self):
        net = _fresh_net(7)
        steps = _path_user_to_leaf(net.topology)
        full = roundtrip_steps(steps)
        assert len(full) == 2 * len(steps)
        assert list(full[: len(steps)]) == list(steps)
        # The return half crosses the same links with swapped senders,
        # in reverse order.
        for fwd, back in zip(steps, reversed(full[len(steps):])):
            assert back.link is fwd.link
            assert back.sender == fwd.link.other(fwd.sender)

    def test_does_not_advance_clock(self):
        net = _fresh_net(7)
        steps = _path_user_to_leaf(net.topology)
        before = net.clock.now_s
        net.probe_batch(steps, _packet(), 30, 0.1)
        assert net.clock.now_s == before

    def test_counters_increment(self):
        net = _fresh_net(7)
        steps = _path_user_to_leaf(net.topology)
        net.probe_batch(steps, _packet(), 30, 0.1)
        net.probe_batch(steps, _packet(), 10, 0.1)
        assert net.counters.batch_series == 2
        assert net.counters.batch_packets == 40

    def test_rtts_exceed_static_floor(self):
        """Every surviving RTT ≥ round-trip propagation (sanity bound)."""
        net = _fresh_net(7)
        steps = _path_user_to_leaf(net.topology)
        floor_ms = 2 * sum(
            net.link_state(s.link).propagation_ms for s in steps
        )
        series = net.probe_batch(steps, _packet(), 200, 0.1)
        assert all(r >= floor_ms for r in series.received_rtts())


# -- determinism contract ------------------------------------------------------


class TestSeededDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @FAST_SETTINGS
    def test_probe_batch_is_seed_deterministic(self, seed):
        """Same seed ⇒ byte-identical rtt vectors, run after run."""

        def run():
            net = _fresh_net(seed)
            steps = _path_user_to_leaf(net.topology)
            return net.probe_batch(steps, _packet(), 100, 0.1, 0.0)

        first, second = run(), run()
        np.testing.assert_array_equal(first.send_times_s, second.send_times_s)
        np.testing.assert_array_equal(first.rtt_ms, second.rtt_ms)

    def test_echo_series_deterministic_across_hosts(self):
        """Two freshly built hosts with the same seed agree byte-for-byte."""

        def run():
            host = ScionHost.scionlab(seed=42)
            path = host.paths("16-ffaa:0:1002", max_paths=1)[0]
            return host.ping("16-ffaa:0:1002", "10.2.0.2", path=path, count=60)

        a, b = run(), run()
        assert a.rtts_ms == b.rtts_ms
        assert a.received == b.received

    def test_different_seeds_differ(self):
        steps_a = _path_user_to_leaf(build_tiny_world())
        net_a = _fresh_net(1)
        net_b = _fresh_net(2)
        sa = net_a.probe_batch(_path_user_to_leaf(net_a.topology), _packet(), 50, 0.1)
        sb = net_b.probe_batch(_path_user_to_leaf(net_b.topology), _packet(), 50, 0.1)
        assert not np.array_equal(sa.rtt_ms, sb.rtt_ms)
        assert len(steps_a) == 4


class TestBatchScalarAgreement:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @SLOW_SETTINGS
    def test_mean_rtt_and_loss_agree_at_1k(self, seed):
        """Batch and scalar series agree statistically at count ≥ 1000.

        The modes consume the per-link streams in different chunk
        shapes, so the comparison is distributional, not sample-wise:
        matched mean RTT (within 2 % or 0.5 ms) and loss fraction
        (within 2 points) over 1000 probes.
        """
        count = 1000
        packet = _packet()

        def series_stats(scalar):
            net = _fresh_net(seed, scalar_fallback=scalar)
            steps = _path_user_to_leaf(net.topology)
            if scalar:
                rtts = []
                lost = 0
                for i in range(count):
                    result = net.probe_roundtrip(steps, packet, t_s=i * 0.1)
                    if result.lost:
                        lost += 1
                    else:
                        rtts.append(result.rtt_ms)
                return float(np.mean(rtts)), lost / count
            series = net.probe_batch(steps, packet, count, 0.1, 0.0)
            return (
                float(np.mean(series.received_rtts())),
                1.0 - series.received / count,
            )

        scalar_mean, scalar_loss = series_stats(True)
        batch_mean, batch_loss = series_stats(False)
        assert batch_mean == pytest.approx(
            scalar_mean, rel=0.02, abs=0.5
        ), "mean RTT diverged between batch and scalar modes"
        assert abs(batch_loss - scalar_loss) < 0.02


class TestRevocationBlackhole:
    def test_blackholed_link_drops_everything_in_batch_mode(self):
        """A monitor revocation must kill batch probes like scalar ones."""
        net = _fresh_net(7)
        steps = _path_user_to_leaf(net.topology)
        link = steps[2].link  # core1a <-> core2, on the path
        ifid = link.interface_of(ISDAS.parse("1-ffaa:0:1"))
        store = RevocationStore(net.topology)
        store.inject(
            Revocation(
                isd_as=ISDAS.parse("1-ffaa:0:1"),
                interface=ifid,
                issued_at_s=0.0,
                expires_at_s=1e6,
                reason="link down",
            ),
            network=net,
        )
        series = net.probe_batch(steps, _packet(), 500, 0.1, 10.0)
        assert series.received == 0
        assert bool(series.lost_mask.all())

    def test_blackhole_window_is_respected(self):
        """Probes outside the revocation validity window survive."""
        net = _fresh_net(7)
        steps = _path_user_to_leaf(net.topology)
        net.add_episode(
            CongestionEpisode.on_links([steps[0].link], 10.0, 20.0, loss=1.0)
        )
        series = net.probe_batch(steps, _packet(), 300, 0.1, 0.0)
        send = series.send_times_s
        inside = (send >= 10.0) & (send < 20.0)
        assert bool(series.lost_mask[inside].all())
        # Most probes outside the window survive (residual loss only).
        outside_received = int(np.count_nonzero(~series.lost_mask[~inside]))
        assert outside_received > 0.9 * int(np.count_nonzero(~inside))


# -- pre-batch byte-compatibility goldens -------------------------------------


def _campaign_digest(*, scalar_fallback):
    client = DocDBClient()
    db = client["upin"]
    seed_servers(db)
    net_config = scionlab_network_config(seed=20231112)
    net_config.scalar_fallback = scalar_fallback
    host = ScionHost(build_scionlab_world(), MY_AS, config=net_config)
    config = SuiteConfig(iterations=1, destination_ids=study_destination_ids())
    PathsCollector(host, db, config).collect()
    report = TestRunner(host, db, config).run()
    docs = sorted(db[STATS_COLLECTION].find({}), key=lambda d: d["_id"])
    blob = json.dumps(docs, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest(), report


class TestScalarFallbackGolden:
    def test_scalar_fallback_reproduces_pre_batch_campaign(self):
        """``scalar_fallback=True`` is byte-identical to the old engine."""
        digest, report = _campaign_digest(scalar_fallback=True)
        assert report.stats_stored == 80
        assert digest == PRE_BATCH_CAMPAIGN_SHA256

    def test_batch_campaign_is_deterministic_but_differs_from_scalar(self):
        """Batch mode re-chunks the RNG streams: deterministic per seed,
        different draws from the scalar walker."""
        digest_a, report = _campaign_digest(scalar_fallback=False)
        digest_b, _ = _campaign_digest(scalar_fallback=False)
        assert digest_a == digest_b
        assert digest_a != PRE_BATCH_CAMPAIGN_SHA256
        assert report.stats_stored == 80
        # The whole campaign rode the fast path: one batch series per
        # ping, zero scalar fallback series.
        assert m.counter_value(report.metrics, m.NET_BATCH_SERIES) == 80
        assert m.counter_value(report.metrics, m.NET_SCALAR_FALLBACKS) == 0


class TestTracerouteGolden:
    def test_seeded_traceroute_pins_partial_probe_streams(self):
        """``probe_partial`` keeps its interleaved scalar stream order.

        Routing traceroute through the batch engine would re-chunk the
        per-link streams shared between depths and silently change every
        hop series; this golden (captured pre-PR) pins the contract.
        """
        host = ScionHost.scionlab(seed=7)
        path = host.paths("16-ffaa:0:1002", max_paths=1)[0]
        hops = host.scmp.traceroute(path)
        got = [
            (
                h.index,
                str(h.isd_as),
                h.interface,
                [None if r is None else round(r, 6) for r in h.rtts_ms],
            )
            for h in hops
        ]
        assert got == TRACEROUTE_GOLDEN


# -- flow ledger ---------------------------------------------------------------


class TestFlowLedgerBounded:
    def test_ledger_stays_bounded_over_1000_transfers(self):
        """Sequential registered transfers prune as the clock advances."""
        net = _fresh_net(7)
        steps = _path_user_to_leaf(net.topology)
        packet = PacketSpec(payload_bytes=1400, n_hops=5, n_segments=2)
        high_water = 0
        for _ in range(1000):
            net.fluid_transfer(
                steps, 5e6, packet, duration_s=3.0, register_flow=True
            )
            net.clock.advance(4.0)  # next transfer starts after this one ends
            high_water = max(high_water, len(net.flows))
        # 4 links × 1 open flow each, plus at most one generation awaiting
        # the next prune: bounded, not O(transfers).
        assert high_water <= 2 * len(steps)
        assert net.counters.ledger_pruned_flows > 0

    def test_overlapping_flows_survive_prune(self):
        net = _fresh_net(7)
        steps = _path_user_to_leaf(net.topology)
        packet = PacketSpec(payload_bytes=1400, n_hops=5, n_segments=2)
        net.fluid_transfer(steps, 5e6, packet, duration_s=100.0, register_flow=True)
        before = len(net.flows)
        net.clock.advance(1.0)
        net.fluid_transfer(steps, 5e6, packet, duration_s=1.0, register_flow=True)
        # The long-lived flow still overlaps: nothing pruned from it.
        assert len(net.flows) == before + len(steps)

    def test_competing_flow_reduces_throughput(self):
        """The indexed ledger still feeds contention into fluid_share."""
        net = _fresh_net(7)
        steps = _path_user_to_leaf(net.topology)
        packet = PacketSpec(payload_bytes=1400, n_hops=5, n_segments=2)
        alone = net.fluid_transfer(steps, 30e6, packet, duration_s=3.0)
        net.fluid_transfer(steps, 30e6, packet, duration_s=3.0, register_flow=True)
        contended = net.fluid_transfer(steps, 30e6, packet, duration_s=3.0)
        assert contended.achieved_bps < alone.achieved_bps


# -- sciond sequence index -----------------------------------------------------


class TestSequenceIndex:
    def test_repeated_lookups_do_not_recombine(self, monkeypatch):
        host = ScionHost.scionlab(seed=7)
        calls = {"n": 0}
        import repro.scion.daemon as daemon_mod

        real = daemon_mod.combine_paths

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(daemon_mod, "combine_paths", counting)
        paths = host.paths("16-ffaa:0:1002", max_paths=None)
        baseline = calls["n"]
        for path in paths:
            for _ in range(3):
                found = host.daemon.path_by_sequence(
                    "16-ffaa:0:1002", path.sequence()
                )
                assert found is not None
                assert found.sequence() == path.sequence()
        assert calls["n"] == baseline  # index served every lookup

    def test_index_invalidated_by_flush(self):
        host = ScionHost.scionlab(seed=7)
        path = host.paths("16-ffaa:0:1002", max_paths=1)[0]
        assert host.daemon.path_by_sequence(
            "16-ffaa:0:1002", path.sequence()
        ) is not None
        host.daemon.flush()
        # After a flush the index rebuilds from a fresh combination and
        # still resolves the same sequence.
        again = host.daemon.path_by_sequence("16-ffaa:0:1002", path.sequence())
        assert again is not None
        assert again.sequence() == path.sequence()

    def test_unknown_sequence_returns_none(self):
        host = ScionHost.scionlab(seed=7)
        assert host.daemon.path_by_sequence("16-ffaa:0:1002", "1-0:0:1#0,0") is None


# -- link sampling cache -------------------------------------------------------


class TestSamplingCache:
    def test_repeat_window_hits_cache(self):
        net = _fresh_net(7)
        steps = _path_user_to_leaf(net.topology)
        state = net.link_state(steps[0].link)
        direction = state.direction_from(steps[0].sender)
        first = state.window_sample(direction, 0.0, 3.0)
        assert net.counters.sampler_misses >= 1
        hits_before = net.counters.sampler_hits
        second = state.window_sample(direction, 0.0, 3.0)
        assert second == first
        assert net.counters.sampler_hits == hits_before + 1

    def test_episode_add_invalidates_cache(self):
        net = _fresh_net(7)
        steps = _path_user_to_leaf(net.topology)
        state = net.link_state(steps[0].link)
        direction = state.direction_from(steps[0].sender)
        clean = state.window_sample(direction, 0.0, 3.0)
        net.add_episode(
            CongestionEpisode.on_links([steps[0].link], 0.0, 3.0, loss=0.5)
        )
        disturbed = state.window_sample(direction, 0.0, 3.0)
        # Same key, new epoch: the answer reflects the new episode.
        assert disturbed != clean
        assert disturbed[1] == pytest.approx(0.5)  # window episode loss

    def test_fluid_transfers_reuse_cached_windows(self):
        net = _fresh_net(7)
        steps = _path_user_to_leaf(net.topology)
        packet = PacketSpec(payload_bytes=1400, n_hops=5, n_segments=2)
        net.fluid_transfer(steps, 5e6, packet, duration_s=3.0)
        misses = net.counters.sampler_misses
        net.fluid_transfer(steps, 5e6, packet, duration_s=3.0)  # same window
        assert net.counters.sampler_misses == misses
        assert net.counters.sampler_hits >= len(steps)


# -- metrics plumbing ----------------------------------------------------------


class TestNetMetrics:
    def test_snapshot_names_cover_all_counters(self):
        net = _fresh_net(7)
        snapshot = m.network_stats_snapshot(net)
        slots = set(net.counters.snapshot())
        assert set(m._NET_STAT_NAMES) == slots

    def test_campaign_report_carries_data_plane_counters(self):
        digest, report = _campaign_digest(scalar_fallback=False)
        assert m.counter_value(report.metrics, m.NET_BATCH_PACKETS) == 80 * 30
        # Every bwtest window lands at a fresh clock time in a serial
        # campaign, so the sampler cache records misses (hits come from
        # overlapping multi-user transfers, covered in TestSamplingCache).
        assert m.counter_value(report.metrics, m.NET_SAMPLER_MISSES) > 0
        text = m.format_metrics(report.metrics)
        assert "data plane:" in text
        assert "batch series" in text

    def test_scalar_campaign_counts_fallback_series(self):
        digest, report = _campaign_digest(scalar_fallback=True)
        assert m.counter_value(report.metrics, m.NET_SCALAR_FALLBACKS) == 80
        assert m.counter_value(report.metrics, m.NET_BATCH_SERIES) == 0
        assert m.counter_value(report.metrics, m.NET_SCALAR_PROBES) == 80 * 30


# -- vectorized utilization reads ---------------------------------------------


class TestValuesAt:
    def test_matches_scalar_reads_any_order(self):
        net = _fresh_net(7)
        steps = _path_user_to_leaf(net.topology)
        state = net.link_state(steps[0].link)
        direction = state.direction_from(steps[0].sender)
        proc = state._util[direction]
        times = np.array([7.3, 0.4, 99.0, 12.8, 0.4])
        vector = proc.values_at(times)
        scalars = np.array([proc.value_at(float(t)) for t in times])
        np.testing.assert_allclose(vector, scalars)

    def test_rejects_negative_times(self):
        net = _fresh_net(7)
        steps = _path_user_to_leaf(net.topology)
        state = net.link_state(steps[0].link)
        proc = state._util[LinkDirection.A_TO_B]
        with pytest.raises(ValidationError):
            proc.values_at(np.array([-1.0]))
