"""Tests for topology serialization and concurrent-flow accounting."""

import pytest

from repro.errors import ParseError
from repro.netsim.config import NetworkConfig
from repro.netsim.network import NetworkSim
from repro.netsim.packet import PacketSpec
from repro.topology.io import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.topology.scionlab import build_scionlab_world

from tests.helpers import build_tiny_world


class TestTopologyIO:
    def test_roundtrip_tiny_world(self):
        topo = build_tiny_world()
        again = topology_from_dict(topology_to_dict(topo))
        assert len(again) == len(topo)
        assert len(again.links()) == len(topo.links())
        assert again.as_of("1-ffaa:0:1").name == "core1a"

    def test_roundtrip_scionlab_world(self):
        topo = build_scionlab_world()
        again = topology_from_dict(topology_to_dict(topo))
        assert len(again) == 36
        # Link identity (interfaces + capacities) must survive.
        orig = {l.key(): l for l in topo.links()}
        back = {l.key(): l for l in again.links()}
        assert orig.keys() == back.keys()
        for key, link in orig.items():
            assert back[key].capacity_ab_mbps == link.capacity_ab_mbps
            assert back[key].kind == link.kind

    def test_roundtripped_world_produces_same_paths(self):
        from repro.scion.snet import ScionHost

        topo = build_scionlab_world()
        again = topology_from_dict(topology_to_dict(topo))
        a = ScionHost(topo, "17-ffaa:1:e01").paths("16-ffaa:0:1002", max_paths=None)
        b = ScionHost(again, "17-ffaa:1:e01").paths("16-ffaa:0:1002", max_paths=None)
        assert [p.sequence() for p in a] == [p.sequence() for p in b]

    def test_file_roundtrip(self, tmp_path):
        topo = build_tiny_world()
        path = str(tmp_path / "world.json")
        save_topology(topo, path)
        again = load_topology(path)
        assert len(again) == 6

    def test_bad_version_rejected(self):
        with pytest.raises(ParseError):
            topology_from_dict({"format_version": 99})

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{oops")
        with pytest.raises(ParseError):
            load_topology(str(path))

    def test_multiple_hosts_survive(self):
        topo = build_scionlab_world()
        again = topology_from_dict(topology_to_dict(topo))
        assert len(again.as_of("16-ffaa:0:1001").hosts) == 2


class TestFlowLedger:
    def _setup(self):
        topo = build_tiny_world()
        net = NetworkSim(topo, NetworkConfig(seed=12))
        hops = ["1-ffaa:1:1", "1-ffaa:0:3", "1-ffaa:0:1", "2-ffaa:0:1", "2-ffaa:0:2"]
        from repro.netsim.network import LinkTraversal
        from repro.topology.isd_as import ISDAS

        steps = []
        for a, b in zip(hops, hops[1:]):
            link = topo.link_between(a, b)[0]
            steps.append(LinkTraversal(link=link, sender=ISDAS.parse(a)))
        return net, steps

    def test_unregistered_flows_do_not_contend(self):
        net, steps = self._setup()
        packet = PacketSpec(payload_bytes=1472, n_hops=5)
        first = net.fluid_transfer(steps, 10e6, packet, 3.0, 0.0)
        second = net.fluid_transfer(steps, 10e6, packet, 3.0, 0.0)
        # Identical up to the one-sided measurement noise draw.
        assert second.loss_fraction == pytest.approx(first.loss_fraction)
        assert second.achieved_bps == pytest.approx(first.achieved_bps, rel=0.1)

    def test_registered_overlapping_flows_contend(self):
        """Two simultaneous 10 Mbps flows on a 16 Mbps uplink share it."""
        net, steps = self._setup()
        packet = PacketSpec(payload_bytes=1472, n_hops=5)
        first = net.fluid_transfer(
            steps, 10e6, packet, 3.0, 0.0, register_flow=True
        )
        second = net.fluid_transfer(
            steps, 10e6, packet, 3.0, 0.0, register_flow=True
        )
        assert first.achieved_bps > 8e6
        assert second.achieved_bps < 0.75 * first.achieved_bps

    def test_disjoint_windows_do_not_contend(self):
        net, steps = self._setup()
        packet = PacketSpec(payload_bytes=1472, n_hops=5)
        first = net.fluid_transfer(
            steps, 10e6, packet, 3.0, 0.0, register_flow=True
        )
        later = net.fluid_transfer(
            steps, 10e6, packet, 3.0, 100.0, register_flow=True
        )
        assert later.achieved_bps == pytest.approx(first.achieved_bps, rel=0.15)

    def test_opposite_direction_does_not_contend(self):
        net, steps = self._setup()
        packet = PacketSpec(payload_bytes=1472, n_hops=5)
        reverse = [s.reversed() for s in reversed(steps)]
        net.fluid_transfer(steps, 10e6, packet, 3.0, 0.0, register_flow=True)
        down = net.fluid_transfer(
            reverse, 10e6, packet, 3.0, 0.0, register_flow=True
        )
        assert down.achieved_bps > 8e6

    def test_ledger_clear(self):
        net, steps = self._setup()
        packet = PacketSpec(payload_bytes=1472, n_hops=5)
        net.fluid_transfer(steps, 10e6, packet, 3.0, 0.0, register_flow=True)
        assert len(net.flows) == len(steps)
        net.flows.clear()
        fresh = net.fluid_transfer(steps, 10e6, packet, 3.0, 0.0)
        assert fresh.achieved_bps > 8e6

    def test_partial_overlap_partial_contention(self):
        net, steps = self._setup()
        packet = PacketSpec(payload_bytes=1472, n_hops=5)
        alone = net.fluid_transfer(steps, 10e6, packet, 3.0, 50.0)
        net.fluid_transfer(steps, 10e6, packet, 3.0, 0.0, register_flow=True)
        half = net.fluid_transfer(steps, 10e6, packet, 3.0, 1.5)  # 50% overlap
        full = net.fluid_transfer(steps, 10e6, packet, 3.0, 0.0)
        assert full.achieved_bps < half.achieved_bps <= alone.achieved_bps + 1e5
