"""Tests for ISD-AS identifier parsing/formatting (repro.topology.isd_as)."""

import pytest

from repro.errors import ParseError
from repro.topology.isd_as import ISDAS, isd_as


class TestParsing:
    def test_paper_identifiers(self):
        ia = ISDAS.parse("19-ffaa:0:1303")
        assert ia.isd == 19
        assert ia.as_str == "ffaa:0:1303"

    def test_roundtrip(self):
        for text in ("16-ffaa:0:1002", "17-ffaa:1:e01", "1-0:0:1"):
            assert str(ISDAS.parse(text)) == text

    def test_parse_is_idempotent_on_instances(self):
        ia = ISDAS.parse("16-ffaa:0:1002")
        assert ISDAS.parse(ia) is ia

    def test_hex_case_normalised(self):
        assert str(ISDAS.parse("17-FFAA:0:1107")) == "17-ffaa:0:1107"

    def test_asn_numeric_value(self):
        ia = ISDAS.parse("1-0:0:10")
        assert ia.asn == 16

    def test_whitespace_stripped(self):
        assert ISDAS.parse("  16-ffaa:0:1002  ").isd == 16

    @pytest.mark.parametrize(
        "bad",
        ["", "16", "ffaa:0:1002", "16-ffaa:0", "16-ffaa:0:1:2", "x-ffaa:0:1",
         "16-gggg:0:1", "16-ffaa:0:11111"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            ISDAS.parse(bad)

    def test_helper_function(self):
        assert isd_as("16-ffaa:0:1002") == ISDAS.parse("16-ffaa:0:1002")


class TestAddresses:
    def test_address_formatting(self):
        ia = ISDAS.parse("16-ffaa:0:1002")
        assert ia.address("172.31.43.7") == "16-ffaa:0:1002,[172.31.43.7]"

    def test_parse_address(self):
        ia, ip = ISDAS.parse_address("16-ffaa:0:1002,[172.31.43.7]")
        assert str(ia) == "16-ffaa:0:1002"
        assert ip == "172.31.43.7"

    def test_parse_address_roundtrip(self):
        text = "19-ffaa:0:1303,[141.44.25.144]"
        ia, ip = ISDAS.parse_address(text)
        assert ia.address(ip) == text

    @pytest.mark.parametrize(
        "bad", ["16-ffaa:0:1002", "16-ffaa:0:1002,172.31.43.7", ",[1.2.3.4]"]
    )
    def test_rejects_bad_addresses(self, bad):
        with pytest.raises(ParseError):
            ISDAS.parse_address(bad)


class TestOrderingAndHashing:
    def test_total_order(self):
        a = ISDAS.parse("16-ffaa:0:1002")
        b = ISDAS.parse("16-ffaa:0:1003")
        c = ISDAS.parse("17-ffaa:0:1")
        assert a < b < c

    def test_sorted_by_isd_then_asn(self):
        items = [ISDAS.parse(t) for t in ("19-ffaa:0:1", "16-ffaa:0:2", "16-ffaa:0:1")]
        assert [str(i) for i in sorted(items)] == [
            "16-ffaa:0:1",
            "16-ffaa:0:2",
            "19-ffaa:0:1",
        ]

    def test_hashable_and_equal(self):
        assert len({ISDAS.parse("16-ffaa:0:1002"), ISDAS.parse("16-ffaa:0:1002")}) == 1

    def test_bounds_checked(self):
        with pytest.raises(ParseError):
            ISDAS(isd=70000, asn=1)
        with pytest.raises(ParseError):
            ISDAS(isd=1, asn=1 << 48)
