"""Tests for persistence (snapshots + journal) and access control."""

import os

import pytest

from repro.crypto.certs import issue_certificate
from repro.crypto.rsa import keypair_from_seed, sign
from repro.crypto.trc import TRC, TrustStore
from repro.docdb.auth import (
    AccessController,
    Role,
    SignedDocumentVerifier,
    sign_document,
)
from repro.docdb.client import DocDBClient
from repro.docdb.storage import JsonlStore, OperationJournal
from repro.errors import AuthError, StorageError


class TestJsonlStore:
    def test_roundtrip(self, tmp_path):
        client = DocDBClient()
        coll = client["upin"]["paths"]
        coll.create_index("server_id")
        coll.insert_many([{"_id": f"1_{i}", "server_id": 1} for i in range(5)])
        client["upin"]["availableServers"].insert_one({"_id": 1, "ip": "1.2.3.4"})
        client.save_to(str(tmp_path))

        restored = DocDBClient.load_from(str(tmp_path))
        again = restored["upin"]["paths"]
        assert len(again) == 5
        assert again.list_indexes() == ["server_id"]
        assert restored["upin"]["availableServers"].find_one({"_id": 1})["ip"] == "1.2.3.4"

    def test_save_is_atomic_replace(self, tmp_path):
        client = DocDBClient()
        client["db"]["c"].insert_one({"_id": 1})
        client.save_to(str(tmp_path))
        files = os.listdir(tmp_path)
        assert "db.c.jsonl" in files
        assert not any(f.endswith(".tmp") for f in files)

    def test_corrupt_snapshot_raises(self, tmp_path):
        path = tmp_path / "db.c.jsonl"
        path.write_text("{not json\n")
        store = JsonlStore(str(tmp_path))
        from repro.docdb.database import Database

        with pytest.raises(StorageError):
            store.load_database(Database("db"))

    def test_list_databases(self, tmp_path):
        client = DocDBClient()
        client["a"]["c"].insert_one({"_id": 1})
        client["b"]["c"].insert_one({"_id": 1})
        client.save_to(str(tmp_path))
        assert JsonlStore(str(tmp_path)).list_databases() == ["a", "b"]

    def test_dotted_database_name_rejected(self, tmp_path):
        # "up.in" would collide with the "<db>.<collection>.jsonl"
        # filename scheme and mis-parse on load.
        client = DocDBClient()
        client["up.in"]["c"].insert_one({"_id": 1})
        with pytest.raises(StorageError, match="database name"):
            client.save_to(str(tmp_path))

    def test_snapshot_removes_files_of_dropped_collections(self, tmp_path):
        client = DocDBClient()
        client["db"]["keep"].insert_one({"_id": 1})
        client["db"]["gone"].insert_one({"_id": 1})
        client.save_to(str(tmp_path))
        assert "db.gone.jsonl" in os.listdir(tmp_path)

        client["db"].drop_collection("gone")
        client.save_to(str(tmp_path))
        files = os.listdir(tmp_path)
        assert "db.keep.jsonl" in files
        assert "db.gone.jsonl" not in files
        # A reload must not resurrect the dropped collection.
        restored = DocDBClient.load_from(str(tmp_path))
        assert restored["db"].list_collection_names() == ["keep"]


class TestOperationJournal:
    def test_append_and_replay(self, tmp_path):
        path = str(tmp_path / "ops.jsonl")
        with OperationJournal(path) as journal:
            journal.append("insert", "upin", "c", {"document": {"_id": 1, "v": 1}})
            journal.append(
                "insert_many", "upin", "c",
                {"documents": [{"_id": 2}, {"_id": 3}]},
            )
            journal.append(
                "update", "upin", "c",
                {"filter": {"_id": 1}, "update": {"$set": {"v": 2}}},
            )
            journal.append("delete", "upin", "c", {"filter": {"_id": 3}})
            journal.flush()

        client = DocDBClient()
        replayed = OperationJournal.replay(path, client)
        assert replayed == 4
        coll = client["upin"]["c"]
        assert coll.find_one({"_id": 1})["v"] == 2
        assert coll.find_one({"_id": 2}) is not None
        assert coll.find_one({"_id": 3}) is None

    def test_torn_tail_ignored(self, tmp_path):
        path = str(tmp_path / "ops.jsonl")
        with OperationJournal(path) as journal:
            journal.append("insert", "d", "c", {"document": {"_id": 1}})
            journal.flush()
        with open(path, "a") as fh:
            fh.write('{"op": "insert", "db": "d", "co')  # crash mid-write
        client = DocDBClient()
        assert OperationJournal.replay(path, client) == 1

    def test_unknown_op_rejected(self, tmp_path):
        with OperationJournal(str(tmp_path / "ops.jsonl")) as journal:
            with pytest.raises(StorageError):
                journal.append("drop_everything", "d", "c", {})

    def test_replay_missing_file_is_empty(self, tmp_path):
        assert OperationJournal.replay(str(tmp_path / "nope.jsonl"), DocDBClient()) == 0


@pytest.fixture(scope="module")
def pki():
    core_kp = keypair_from_seed(10, bits=256)
    leaf_kp = keypair_from_seed(11, bits=256)
    trc = TRC(isd=17, version=1, core_keys={"17-core": core_kp.public})
    cert = issue_certificate("17-core", core_kp, "17-ffaa:1:e01", leaf_kp.public)
    return TrustStore([trc]), core_kp, leaf_kp, cert


class TestAccessController:
    def test_full_flow(self, pki):
        store, _core, leaf_kp, cert = pki
        ac = AccessController(store)
        ac.grant("17-ffaa:1:e01", Role.WRITE)
        nonce = ac.challenge("17-ffaa:1:e01")
        token = ac.authenticate([cert], sign(leaf_kp, nonce))
        assert ac.authorize(token.value, Role.WRITE).subject == "17-ffaa:1:e01"

    def test_wrong_key_rejected(self, pki):
        store, _core, _leaf, cert = pki
        intruder = keypair_from_seed(99, bits=256)
        ac = AccessController(store)
        ac.grant("17-ffaa:1:e01", Role.WRITE)
        nonce = ac.challenge("17-ffaa:1:e01")
        with pytest.raises(AuthError):
            ac.authenticate([cert], sign(intruder, nonce))

    def test_challenge_single_use(self, pki):
        store, _core, leaf_kp, cert = pki
        ac = AccessController(store)
        ac.grant("17-ffaa:1:e01", Role.WRITE)
        nonce = ac.challenge("17-ffaa:1:e01")
        ac.authenticate([cert], sign(leaf_kp, nonce))
        with pytest.raises(AuthError):
            ac.authenticate([cert], sign(leaf_kp, nonce))

    def test_no_grant_no_token(self, pki):
        store, _core, leaf_kp, cert = pki
        ac = AccessController(store)
        nonce = ac.challenge("17-ffaa:1:e01")
        with pytest.raises(AuthError):
            ac.authenticate([cert], sign(leaf_kp, nonce))

    def test_missing_role_rejected(self, pki):
        store, _core, leaf_kp, cert = pki
        ac = AccessController(store)
        ac.grant("17-ffaa:1:e01", Role.READ)
        nonce = ac.challenge("17-ffaa:1:e01")
        token = ac.authenticate([cert], sign(leaf_kp, nonce))
        with pytest.raises(AuthError):
            ac.authorize(token.value, Role.WRITE)

    def test_admin_implies_all(self, pki):
        store, _core, leaf_kp, cert = pki
        ac = AccessController(store)
        ac.grant("17-ffaa:1:e01", Role.ADMIN)
        nonce = ac.challenge("17-ffaa:1:e01")
        token = ac.authenticate([cert], sign(leaf_kp, nonce))
        ac.authorize(token.value, Role.WRITE)
        ac.authorize(token.value, Role.READ)

    def test_token_expiry(self, pki):
        store, _core, leaf_kp, cert = pki
        ac = AccessController(store, token_lifetime_epochs=5)
        ac.grant("17-ffaa:1:e01", Role.WRITE)
        nonce = ac.challenge("17-ffaa:1:e01")
        token = ac.authenticate([cert], sign(leaf_kp, nonce))
        ac.advance_epoch(10)
        with pytest.raises(AuthError):
            ac.authorize(token.value, Role.WRITE)

    def test_revoke_kills_tokens(self, pki):
        store, _core, leaf_kp, cert = pki
        ac = AccessController(store)
        ac.grant("17-ffaa:1:e01", Role.WRITE)
        nonce = ac.challenge("17-ffaa:1:e01")
        token = ac.authenticate([cert], sign(leaf_kp, nonce))
        ac.revoke("17-ffaa:1:e01")
        with pytest.raises(AuthError):
            ac.authorize(token.value, Role.WRITE)

    def test_unknown_token(self, pki):
        store, *_ = pki
        with pytest.raises(AuthError):
            AccessController(store).authorize("fake", Role.READ)

    def test_no_challenge_outstanding(self, pki):
        store, _core, leaf_kp, cert = pki
        ac = AccessController(store)
        ac.grant("17-ffaa:1:e01", Role.WRITE)
        with pytest.raises(AuthError):
            ac.authenticate([cert], 123)


class TestSignedDocuments:
    def test_sign_and_verify(self):
        kp = keypair_from_seed(20, bits=256)
        verifier = SignedDocumentVerifier()
        verifier.register_writer("me", kp.public)
        doc = sign_document({"_id": 1, "v": 42}, "me", kp)
        verifier(doc)  # does not raise

    def test_tampering_detected(self):
        kp = keypair_from_seed(20, bits=256)
        verifier = SignedDocumentVerifier()
        verifier.register_writer("me", kp.public)
        doc = sign_document({"_id": 1, "v": 42}, "me", kp)
        doc["v"] = 43
        with pytest.raises(AuthError):
            verifier(doc)

    def test_unsigned_rejected(self):
        verifier = SignedDocumentVerifier()
        with pytest.raises(AuthError):
            verifier({"_id": 1})

    def test_unknown_writer_rejected(self):
        kp = keypair_from_seed(20, bits=256)
        verifier = SignedDocumentVerifier()
        doc = sign_document({"_id": 1}, "stranger", kp)
        with pytest.raises(AuthError):
            verifier(doc)

    def test_collection_validator_integration(self):
        kp = keypair_from_seed(20, bits=256)
        verifier = SignedDocumentVerifier()
        verifier.register_writer("suite", kp.public)
        client = DocDBClient()
        coll = client["upin"]["paths_stats"]
        coll.validator = verifier
        coll.insert_one(sign_document({"_id": "2_15_1", "lat": 42.0}, "suite", kp))
        with pytest.raises(AuthError):
            coll.insert_one({"_id": "2_15_2", "lat": 41.0})
        assert len(coll) == 1

    def test_resigning_replaces_signature(self):
        kp = keypair_from_seed(20, bits=256)
        doc = sign_document({"_id": 1, "v": 1}, "me", kp)
        doc2 = sign_document({**doc, "v": 2}, "me", kp)
        verifier = SignedDocumentVerifier()
        verifier.register_writer("me", kp.public)
        verifier(doc2)
