"""Tests for the path-selection engine (repro.selection)."""

import math

import pytest

from repro.errors import NoPathError, ValidationError
from repro.selection.engine import PathSelector
from repro.selection.policies import (
    BandwidthPolicy,
    CompositePolicy,
    JitterPolicy,
    LatencyPolicy,
    LossPolicy,
    PathAggregate,
    policy_for,
)
from repro.selection.request import Metric, UserRequest


def _agg(path_id="1_0", **kw):
    defaults = dict(
        path_id=path_id,
        server_id=1,
        hop_count=6,
        isds=[16, 17, 19],
        ases=["17-ffaa:1:e01", "16-ffaa:0:1002"],
        samples=10,
        avg_latency_ms=40.0,
        latency_stddev_ms=1.0,
        avg_loss_pct=0.0,
        avg_bw_down_mbps=11.0,
        avg_bw_up_mbps=9.0,
    )
    defaults.update(kw)
    return PathAggregate(**defaults)


class TestUserRequest:
    def test_defaults(self):
        req = UserRequest.make(1)
        assert req.metric is Metric.LATENCY
        assert not req.exclude_countries

    def test_make_normalises_countries(self):
        req = UserRequest.make(1, exclude_countries=["us", "Sg"])
        assert req.exclude_countries == frozenset({"US", "SG"})

    def test_metric_from_string(self):
        assert UserRequest.make(1, "jitter").metric is Metric.JITTER

    def test_composite_requires_weights(self):
        with pytest.raises(ValidationError):
            UserRequest.make(1, Metric.COMPOSITE)

    def test_bad_server_id(self):
        with pytest.raises(ValidationError):
            UserRequest.make(0)

    def test_bad_excluded_as(self):
        with pytest.raises(ValidationError):
            UserRequest.make(1, exclude_ases=["garbage"])


class TestPolicies:
    def test_latency_lower_is_better(self):
        policy = LatencyPolicy()
        assert policy.score(_agg(avg_latency_ms=40)) < policy.score(
            _agg(avg_latency_ms=50)
        )

    def test_latency_missing_is_inf(self):
        assert LatencyPolicy().score(_agg(avg_latency_ms=None)) == math.inf

    def test_jitter_prefers_stability_over_speed(self):
        """§6.1: streaming wants consistency more than low latency."""
        policy = JitterPolicy()
        stable_slow = _agg(avg_latency_ms=200, latency_stddev_ms=0.5)
        fast_jittery = _agg(avg_latency_ms=40, latency_stddev_ms=6.0)
        assert policy.score(stable_slow) < policy.score(fast_jittery)

    def test_jitter_latency_tiebreak(self):
        policy = JitterPolicy()
        a = _agg(avg_latency_ms=40, latency_stddev_ms=1.0)
        b = _agg(avg_latency_ms=50, latency_stddev_ms=1.0)
        assert policy.score(a) < policy.score(b)

    def test_bandwidth_higher_is_better(self):
        policy = BandwidthPolicy(downstream=True)
        assert policy.score(_agg(avg_bw_down_mbps=11)) < policy.score(
            _agg(avg_bw_down_mbps=5)
        )

    def test_bandwidth_up_variant(self):
        policy = BandwidthPolicy(downstream=False)
        assert policy.score(_agg(avg_bw_up_mbps=9)) == -9

    def test_loss_policy(self):
        policy = LossPolicy()
        assert policy.score(_agg(avg_loss_pct=0.0)) < policy.score(
            _agg(avg_loss_pct=50.0)
        )

    def test_composite_weights_blend(self):
        candidates = [
            _agg("a", avg_latency_ms=40, avg_bw_down_mbps=5),
            _agg("b", avg_latency_ms=200, avg_bw_down_mbps=12),
        ]
        lat_heavy = CompositePolicy({"latency": 1.0, "bandwidth_down": 0.1}).fit(
            candidates
        )
        bw_heavy = CompositePolicy({"latency": 0.1, "bandwidth_down": 1.0}).fit(
            candidates
        )
        assert lat_heavy.score(candidates[0]) < lat_heavy.score(candidates[1])
        assert bw_heavy.score(candidates[1]) < bw_heavy.score(candidates[0])

    def test_composite_unknown_metric_rejected(self):
        with pytest.raises(ValidationError):
            CompositePolicy({"vibes": 1.0})

    def test_composite_empty_rejected(self):
        with pytest.raises(ValidationError):
            CompositePolicy({})

    def test_policy_factory(self):
        assert isinstance(policy_for(Metric.LATENCY), LatencyPolicy)
        assert isinstance(policy_for(Metric.JITTER), JitterPolicy)
        assert isinstance(policy_for(Metric.LOSS), LossPolicy)
        assert isinstance(
            policy_for(Metric.COMPOSITE, {"latency": 1.0}), CompositePolicy
        )

    def test_describe_strings(self):
        assert "latency" in LatencyPolicy().describe(_agg())
        assert "spread" in JitterPolicy().describe(_agg())


class TestSelectorOnCampaign:
    @pytest.fixture(scope="class")
    def selector(self, measured_world):
        return PathSelector(measured_world.db, measured_world.host.topology)

    def test_aggregates_cover_all_paths(self, selector, measured_world):
        aggs = selector.aggregates(1)
        assert len(aggs) == 22
        assert all(a.samples == 2 for a in aggs)

    def test_latency_selection_avoids_detours(self, selector):
        result = selector.select(UserRequest.make(1, Metric.LATENCY))
        assert result.best is not None
        best = result.best.aggregate
        assert "16-ffaa:0:1004" not in best.ases  # not via Ohio
        assert "16-ffaa:0:1007" not in best.ases  # not via Singapore
        assert best.avg_latency_ms < 60

    def test_ranking_is_sorted(self, selector):
        result = selector.select(UserRequest.make(1, Metric.LATENCY), top_k=5)
        scores = [r.score for r in result.ranked]
        assert scores == sorted(scores)

    def test_country_exclusion(self, selector):
        result = selector.select(
            UserRequest.make(1, exclude_countries=["US", "SG"])
        )
        assert result.best is not None
        assert len(result.excluded) == 8  # 4 Ohio + 4 Singapore detours
        for reasons in result.excluded.values():
            assert any("country" in r for r in reasons)

    def test_operator_exclusion_blocks_amazon_destination(self, selector):
        """Every path to Ireland ends at an Amazon AS, so excluding the
        operator Amazon must make the request unsatisfiable."""
        result = selector.select(
            UserRequest.make(1, exclude_operators=["Amazon"])
        )
        assert result.best is None
        assert len(result.excluded) == 22

    def test_as_exclusion(self, selector):
        result = selector.select(
            UserRequest.make(1, exclude_ases=["16-ffaa:0:1004"])
        )
        assert result.best is not None
        assert all(
            "16-ffaa:0:1004" not in r.aggregate.ases for r in result.ranked
        )

    def test_isd_exclusion_unsatisfiable(self, selector):
        result = selector.select(UserRequest.make(1, exclude_isds=[16]))
        assert result.best is None

    def test_max_latency_constraint(self, selector):
        result = selector.select(
            UserRequest.make(1, max_latency_ms=100.0)
        )
        assert result.best is not None
        assert all(
            "latency" not in "".join(rs) or True for rs in result.excluded.values()
        )
        assert all(r.aggregate.avg_latency_ms <= 100 for r in result.ranked)

    def test_min_bandwidth_constraint(self, selector):
        result = selector.select(
            UserRequest.make(3, Metric.BANDWIDTH_DOWN, min_bandwidth_down_mbps=5.0)
        )
        assert result.best is not None
        assert result.best.aggregate.avg_bw_down_mbps >= 5.0

    def test_unknown_destination_raises(self, selector):
        with pytest.raises(NoPathError):
            selector.select(UserRequest.make(7))

    def test_recommendation_menu(self, selector):
        menu = selector.recommend(1, top_k=2)
        assert set(menu) == {"latency", "jitter", "bandwidth_down", "loss"}
        assert all(1 <= len(paths) <= 2 for paths in menu.values())

    def test_format_text_renders(self, selector):
        result = selector.select(
            UserRequest.make(1, exclude_countries=["US"])
        )
        text = result.format_text()
        assert "selected path" in text
        assert "avoid countries" in text

    def test_no_admissible_render(self, selector):
        result = selector.select(UserRequest.make(1, exclude_isds=[17]))
        assert "NO ADMISSIBLE PATH" in result.format_text()
