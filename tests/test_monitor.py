"""Unit and integration tests for the flow-health monitor subsystem."""

import json

import pytest

from repro.docdb.client import DocDBClient
from repro.errors import TopologyError, ValidationError
from repro.experiments.world import run_campaign
from repro.monitor.failover import FailoverEngine
from repro.monitor.health import (
    FlowHealth,
    FlowHealthTracker,
    HealthSample,
    replay_events,
)
from repro.monitor.journal import (
    EVENT_FAILOVER,
    EVENT_FAILOVER_FAILED,
    EVENT_FAILOVER_SUPPRESSED,
    EVENT_TYPES,
    FlowEventJournal,
)
from repro.monitor.loop import FlowMonitor
from repro.monitor.revocation import (
    Revocation,
    RevocationStore,
    sequence_interfaces,
)
from repro.monitor.scenario import run_outage_scenario
from repro.monitor.slo import FlowSLO
from repro.selection.engine import PathSelector
from repro.selection.request import UserRequest
from repro.suite import metrics as m
from repro.topology.isd_as import ISDAS
from repro.upin.controller import PathController


@pytest.fixture(scope="module")
def monitor_world():
    """A small campaign world this module may mutate freely."""
    return run_campaign([3], iterations=1, seed=77001)


def fresh_journal():
    return FlowEventJournal(DocDBClient()["j"]["flow_events"])


# -- SLO ----------------------------------------------------------------------


class TestFlowSLO:
    def test_defaults(self):
        slo = FlowSLO()
        assert slo.max_loss_pct == 50.0
        assert (slo.breach_k, slo.window_n) == (2, 3)
        assert slo.cooldown_s == 120.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            FlowSLO(max_loss_pct=0.0)
        with pytest.raises(ValidationError):
            FlowSLO(breach_k=4, window_n=3)
        with pytest.raises(ValidationError):
            FlowSLO(max_latency_ms=-1.0)
        with pytest.raises(ValidationError):
            FlowSLO(cooldown_s=-1.0)

    def test_from_request_adopts_hard_limits_with_headroom(self):
        request = UserRequest.make(
            3, max_latency_ms=100.0, max_loss_pct=5.0,
            min_bandwidth_down_mbps=8.0,
        )
        slo = FlowSLO.from_request(request)
        assert slo.max_latency_ms == pytest.approx(150.0)  # 1.5x headroom
        assert slo.max_loss_pct == 5.0
        assert slo.min_bandwidth_down_mbps == 8.0

    def test_from_request_falls_back_to_domain_defaults(self):
        slo = FlowSLO.from_request(UserRequest.make(3))
        assert slo.max_latency_ms is None
        assert slo.max_loss_pct == 50.0

    def test_document_roundtrip(self):
        slo = FlowSLO(max_latency_ms=80.0, breach_k=3, window_n=5)
        assert FlowSLO.from_document(slo.to_document()) == slo

    def test_describe(self):
        text = FlowSLO(max_latency_ms=80.0).describe()
        assert "latency<=80ms" in text and "2-of-3" in text


# -- tracker ------------------------------------------------------------------


class TestFlowHealthTracker:
    KEY = ("alice", 3)

    def make(self, **slo_kwargs):
        tracker = FlowHealthTracker()
        tracker.register(self.KEY, FlowSLO(**slo_kwargs), "p1", 0.0)
        return tracker

    def test_ewma_fold_values(self):
        tracker = self.make()
        tracker.observe(self.KEY, HealthSample(1.0, 0.0, latency_ms=100.0))
        tracker.observe(self.KEY, HealthSample(2.0, 0.0, latency_ms=50.0))
        snap = tracker.snapshot()["alice/3"]
        assert snap["ewma_latency_ms"] == pytest.approx(0.4 * 50 + 0.6 * 100)

    def test_none_latency_keeps_previous_ewma(self):
        tracker = self.make()
        tracker.observe(self.KEY, HealthSample(1.0, 0.0, latency_ms=40.0))
        tracker.observe(self.KEY, HealthSample(2.0, 100.0, latency_ms=None))
        snap = tracker.snapshot()["alice/3"]
        assert snap["ewma_latency_ms"] == pytest.approx(40.0)

    def test_ok_degraded_violated_and_recovery(self):
        tracker = self.make(max_loss_pct=50.0, breach_k=2, window_n=3)
        bad = lambda t: HealthSample(t, 100.0)
        good = lambda t: HealthSample(t, 0.0)
        assert tracker.observe(self.KEY, bad(1.0)).transition.to_state \
            is FlowHealth.DEGRADED
        assert tracker.observe(self.KEY, bad(2.0)).transition.to_state \
            is FlowHealth.VIOLATED
        # One good sample is not a recovery (hysteresis)...
        # EWMA after two 100s then one 0: 0.4*0+0.6*100 = 60 > 50 - still
        # a breach; feed enough clean samples to drain the window.
        t, state = 3.0, tracker.state_of(self.KEY)
        while tracker.state_of(self.KEY) is not FlowHealth.OK:
            obs = tracker.observe(self.KEY, good(t))
            t += 1.0
            assert t < 20.0, "never recovered"
        assert tracker.state_of(self.KEY) is FlowHealth.OK
        assert tracker.first_breach_of(self.KEY) is None

    def test_first_breach_time_survives_the_streak(self):
        tracker = self.make()
        tracker.observe(self.KEY, HealthSample(5.0, 100.0))
        tracker.observe(self.KEY, HealthSample(6.0, 100.0))
        assert tracker.first_breach_of(self.KEY) == 5.0

    def test_register_resets_state_after_failover(self):
        tracker = self.make()
        tracker.observe(self.KEY, HealthSample(1.0, 100.0))
        tracker.observe(self.KEY, HealthSample(2.0, 100.0))
        assert tracker.state_of(self.KEY) is FlowHealth.VIOLATED
        tracker.register(self.KEY, FlowSLO(), "p2", 3.0)
        assert tracker.state_of(self.KEY) is FlowHealth.OK
        assert tracker.path_of(self.KEY) == "p2"
        assert tracker.snapshot()["alice/3"]["samples"] == 0

    def test_staleness_breach(self):
        tracker = self.make(max_staleness_s=60.0, breach_k=1, window_n=1)
        tracker.observe(self.KEY, HealthSample(0.0, 0.0))
        assert tracker.observe_staleness(self.KEY, 30.0) is None
        transition = tracker.observe_staleness(self.KEY, 120.0)
        assert transition is not None
        assert transition.to_state is FlowHealth.VIOLATED
        assert transition.cause == "staleness"

    def test_breach_reasons_text(self):
        tracker = self.make(max_loss_pct=10.0)
        tracker.observe(self.KEY, HealthSample(1.0, 90.0))
        reasons = tracker.breach_reasons(self.KEY)
        assert reasons and "loss" in reasons[0]

    def test_untracked_flow_raises(self):
        tracker = FlowHealthTracker()
        with pytest.raises(ValidationError):
            tracker.state_of(("nobody", 1))
        assert not tracker.unregister(("nobody", 1))

    def test_counts_by_state(self):
        tracker = self.make()
        tracker.register(("bob", 1), FlowSLO(), "p", 0.0)
        tracker.mark_dead(("bob", 1), "revoked", 1.0)
        counts = tracker.counts_by_state()
        assert counts["ok"] == 1 and counts["dead"] == 1


# -- revocations --------------------------------------------------------------


class TestRevocation:
    def test_sequence_interfaces_parses_and_skips_zero(self):
        seq = "17-ffaa:1:1#0,2 17-ffaa:0:1107#1,3 19-ffaa:0:1301#4,0"
        assert sequence_interfaces(seq) == {
            ("17-ffaa:1:1", 2),
            ("17-ffaa:0:1107", 1),
            ("17-ffaa:0:1107", 3),
            ("19-ffaa:0:1301", 4),
        }

    def test_malformed_predicate_raises(self):
        with pytest.raises(ValidationError):
            sequence_interfaces("17-ffaa:1:1")

    def test_revocation_validation(self):
        ia = ISDAS.parse("17-ffaa:0:1107")
        with pytest.raises(ValidationError):
            Revocation(ia, 0, 0.0, 10.0)
        with pytest.raises(ValidationError):
            Revocation(ia, 1, 10.0, 10.0)

    def test_inject_validates_interface_exists(self, world_host):
        store = RevocationStore(world_host.topology)
        with pytest.raises(TopologyError):
            store.inject(
                Revocation(ISDAS.parse("17-ffaa:0:1107"), 999, 0.0, 10.0)
            )

    def test_affecting_path_matches_pinned_interface(self, world_host):
        path = world_host.paths("19-ffaa:0:1303", max_paths=1)[0]
        hop = path.hops[1]
        store = RevocationStore(world_host.topology)
        revocation = Revocation(hop.isd_as, hop.ingress, 0.0, 100.0)
        store.inject(revocation)
        assert store.affecting_path(path, 50.0) is revocation
        assert store.affecting_path(path, 150.0) is None  # expired

    def test_affected_path_ids_and_expiry(self, world_host):
        path = world_host.paths("19-ffaa:0:1303", max_paths=1)[0]
        hop = path.hops[1]
        store = RevocationStore(world_host.topology)
        store.inject(Revocation(hop.isd_as, hop.ingress, 0.0, 100.0))
        docs = [
            {"_id": "a", "sequence": path.sequence()},
            {"_id": "b", "sequence": f"{path.src}#0,0"},
        ]
        assert store.affected_path_ids(docs, 10.0) == {"a"}
        assert store.affected_path_ids(docs, 200.0) == set()
        assert store.expire(200.0) == 1
        assert len(store) == 0

    def test_blackhole_adds_netsim_episode(self, fresh_world_host):
        host = fresh_world_host
        path = host.paths("19-ffaa:0:1303", max_paths=1)[0]
        hop = path.hops[1]
        store = RevocationStore(host.topology)
        before = len(host.network.episodes)
        store.inject(
            Revocation(hop.isd_as, hop.ingress, 0.0, 100.0),
            network=host.network,
        )
        assert len(host.network.episodes) == before + 1


# -- journal ------------------------------------------------------------------


class TestJournal:
    def test_append_assigns_monotonic_seq(self):
        journal = fresh_journal()
        a = journal.append("revocation", 1.0, isd_as="x", interface=1)
        b = journal.append("flow_withdrawn", 2.0, user="u", server_id=1)
        assert (a["seq"], b["seq"]) == (0, 1)
        assert a["_id"] == "flowevt_00000000"
        assert len(journal) == 2

    def test_unknown_event_type_rejected(self):
        with pytest.raises(ValueError):
            fresh_journal().append("nonsense", 0.0)

    def test_seq_resumes_on_existing_collection(self):
        coll = DocDBClient()["j"]["flow_events"]
        FlowEventJournal(coll).append("revocation", 1.0, isd_as="x", interface=1)
        resumed = FlowEventJournal(coll)
        doc = resumed.append("revocation", 2.0, isd_as="y", interface=2)
        assert doc["seq"] == 1

    def test_filtered_events(self):
        journal = fresh_journal()
        journal.append("flow_registered", 0.0, user="a", server_id=1, path_id="p")
        journal.append("flow_registered", 0.0, user="b", server_id=2, path_id="q")
        assert [d["user"] for d in journal.events(user="a")] == ["a"]
        assert len(journal.events(event_type="flow_registered")) == 2

    def test_failover_report_empty(self):
        assert "(no failovers recorded)" in fresh_journal().failover_report()

    def test_format_events_empty_and_nonempty(self):
        journal = fresh_journal()
        assert "journal empty" in journal.format_events()
        journal.append(
            "failover", 5.0, user="a", server_id=1,
            old_path_id="p", new_path_id="q", cause="test",
        )
        text = journal.format_events()
        assert "p -> q" in text and "failover" in text


# -- failover engine ----------------------------------------------------------


class TestFailoverEngine:
    def _engine(self, world, user, *, exclude_others=False):
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        if exclude_others:
            # Leave exactly one admissible path so reselection starves.
            path_ids = {
                str(d["_id"])
                for d in world.db["paths"].find({"server_id": 3})
            }
            keep = sorted(path_ids)[0]
            request = UserRequest.make(
                3, exclude_paths=path_ids - {keep}
            )
        else:
            request = UserRequest.make(3)
        rule = controller.apply_intent(user, request)
        journal = fresh_journal()
        engine = FailoverEngine(
            controller, RevocationStore(world.host.topology), journal
        )
        return engine, controller, rule, journal

    def test_swap_keeps_original_request(self, monitor_world):
        engine, controller, rule, journal = self._engine(
            monitor_world, "swapper"
        )
        outcome = engine.try_failover(rule, FlowSLO(), "test", 100.0)
        assert outcome.swapped
        new_rule = controller.active_flow("swapper", 3)
        assert new_rule.request == rule.request  # intent verbatim
        assert new_rule.path_id != rule.path_id
        assert journal.events(event_type=EVENT_FAILOVER)

    def test_cooldown_suppression_is_journaled(self, monitor_world):
        engine, controller, rule, journal = self._engine(
            monitor_world, "flapper"
        )
        slo = FlowSLO(cooldown_s=300.0)
        first = engine.try_failover(rule, slo, "breach", 100.0)
        assert first.swapped
        second = engine.try_failover(
            controller.active_flow("flapper", 3), slo, "breach", 150.0
        )
        assert second.suppressed and not second.swapped
        docs = journal.events(event_type=EVENT_FAILOVER_SUPPRESSED)
        assert docs and docs[0]["cooldown_remaining_s"] == pytest.approx(250.0)

    def test_force_bypasses_cooldown(self, monitor_world):
        engine, controller, rule, journal = self._engine(
            monitor_world, "forced"
        )
        slo = FlowSLO(cooldown_s=300.0)
        assert engine.try_failover(rule, slo, "breach", 100.0).swapped
        outcome = engine.try_failover(
            controller.active_flow("forced", 3), slo, "revoked", 150.0,
            force=True,
        )
        assert outcome.swapped and not outcome.suppressed

    def test_no_replacement_is_journaled_as_failed(self, monitor_world):
        engine, controller, rule, journal = self._engine(
            monitor_world, "stuck", exclude_others=True
        )
        outcome = engine.try_failover(rule, FlowSLO(), "breach", 100.0)
        assert not outcome.swapped and outcome.error is not None
        docs = journal.events(event_type=EVENT_FAILOVER_FAILED)
        assert docs and "breach" in docs[0]["cause"]
        # The flow rule is untouched.
        assert controller.active_flow("stuck", 3).path_id == rule.path_id

    def test_detection_to_recovery_latency(self, monitor_world):
        engine, controller, rule, journal = self._engine(
            monitor_world, "latency"
        )
        outcome = engine.try_failover(
            rule, FlowSLO(), "breach", 130.0, detected_at_s=100.0
        )
        assert outcome.detection_to_recovery_s == pytest.approx(30.0)
        doc = journal.failovers()[0]
        assert doc["detection_to_recovery_s"] == pytest.approx(30.0)


# -- monitor loop -------------------------------------------------------------


class TestFlowMonitorUnit:
    def test_watch_and_unwatch_journal_events(self, monitor_world):
        world = monitor_world
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        monitor = FlowMonitor(world.host, DocDBClient()["m"], controller)
        rule = controller.apply_intent("watcher", UserRequest.make(3))
        slo = monitor.watch(rule)
        assert slo.max_loss_pct == 50.0
        assert monitor.tracker.is_tracked(rule.key)
        assert monitor.unwatch("watcher", 3)
        assert not monitor.tracker.is_tracked(rule.key)
        assert not monitor.unwatch("watcher", 3)
        types = [d["type"] for d in monitor.journal.events()]
        assert types == ["flow_registered", "flow_withdrawn"]

    def test_probe_feeds_tracker(self, monitor_world):
        world = monitor_world
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        monitor = FlowMonitor(world.host, DocDBClient()["m"], controller)
        rule = controller.apply_intent("prober", UserRequest.make(3))
        monitor.watch(rule)
        monitor.after_round()
        snap = monitor.tracker.snapshot()["prober/3"]
        assert snap["samples"] >= 1
        assert monitor.metrics.counter(m.MON_PROBES) == 3
        controller.withdraw("prober", 3)


# -- the scripted outage scenario (end-to-end) --------------------------------


@pytest.fixture(scope="module")
def scenario():
    return run_outage_scenario(rounds=8)


class TestOutageScenario:
    def test_flow_goes_violated_then_recovers(self, scenario):
        transitions = [
            (d["from"], d["to"])
            for d in scenario.journal.transitions(user="alice")
        ]
        assert ("ok", "violated") in transitions or \
            ("degraded", "violated") in transitions
        assert scenario.monitor.tracker.state_of(("alice", 3)) \
            is FlowHealth.OK

    def test_both_failure_modes_fire(self, scenario):
        causes = [d["cause"] for d in scenario.journal.failovers()]
        assert len(causes) == 2
        assert any("loss" in c for c in causes)
        assert any("revocation" in c for c in causes)

    def test_detection_to_recovery_recorded(self, scenario):
        for doc in scenario.journal.failovers():
            assert doc["detection_to_recovery_s"] >= 0.0
            assert doc["recovered_at_s"] >= doc["detected_at_s"]

    def test_path_journey_recorded(self, scenario):
        assert len(scenario.path_history) >= 3  # out and back counts

    def test_metrics_match_journal(self, scenario):
        snap = scenario.monitor.metrics_snapshot()
        assert snap["counters"][m.MON_FAILOVERS] == \
            len(scenario.journal.failovers())
        assert snap["counters"][m.MON_REVOCATIONS] == 1

    def test_failover_report_text(self, scenario):
        text = scenario.journal.failover_report()
        assert "2 failover(s)" in text
        assert "mean time-to-repair" in text

    def test_journal_replay_matches_live_tracker(self, scenario):
        replayed = replay_events(scenario.journal.events())
        assert replayed.snapshot() == scenario.monitor.tracker.snapshot()

    def test_byte_identical_across_repeated_runs(self, scenario):
        again = run_outage_scenario(rounds=8)
        a = json.dumps(scenario.journal.events(), sort_keys=True, default=str)
        b = json.dumps(again.journal.events(), sort_keys=True, default=str)
        assert a == b

    def test_event_types_all_known(self, scenario):
        assert {d["type"] for d in scenario.journal.events()} <= EVENT_TYPES


class TestMonitorCLI:
    def test_failover_report_action(self, capsys):
        from repro.upin.cli import main

        assert main(["monitor", "failover-report"]) == 0
        out = capsys.readouterr().out
        assert "failover report:" in out
        assert "->" in out

    def test_status_action_with_metrics(self, capsys):
        from repro.upin.cli import main

        assert main(["monitor", "status", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "monitored flows:" in out
        assert "path journey:" in out
        assert "monitor:" in out  # the metrics block

    def test_events_action_with_limit(self, capsys):
        from repro.upin.cli import main

        assert main(["monitor", "events", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert out.count("#0") == 5
