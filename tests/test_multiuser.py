"""Tests for the multi-user contention experiment."""

import pytest

from repro.experiments import multiuser
from repro.experiments.multiuser import jain_index
from repro.experiments.world import run_campaign


@pytest.fixture(scope="module")
def result():
    world = run_campaign([3], iterations=2, seed=20231112)
    return multiuser.run(user_counts=(1, 2, 4, 8), world=world)


class TestJainIndex:
    def test_equal_shares(self):
        assert jain_index([5, 5, 5]) == pytest.approx(1.0)

    def test_single_user(self):
        assert jain_index([7]) == pytest.approx(1.0)

    def test_totally_unfair(self):
        # One user hogs everything among N: index -> 1/N.
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0, 0]) == 1.0


class TestContention:
    def test_per_user_goodput_decreases_with_users(self, result):
        for policy in ("selfish", "spread"):
            means = [result.point(n, policy).mean_mbps for n in (1, 2, 4, 8)]
            assert means[0] > means[-1]
            assert means[2] > means[3]  # still falling at the tail

    def test_aggregate_saturates_below_access_capacity(self, result):
        """Aggregate goodput never exceeds the 40 Mbps access downlink."""
        for p in result.points:
            assert p.aggregate_mbps < 40.0

    def test_single_user_near_target(self, result):
        assert result.point(1, "selfish").mean_mbps > 7.0

    def test_spreading_roughly_no_worse_than_selfish(self, result):
        """Spreading never loses much; depending on how distinct the
        ranked paths are it can win substantially (interior contention)."""
        for users in (4, 8):
            selfish = result.point(users, "selfish")
            spread = result.point(users, "spread")
            assert spread.aggregate_mbps >= 0.8 * selfish.aggregate_mbps
            assert spread.fairness >= selfish.fairness - 0.1

    def test_fairness_degrades_under_heavy_contention(self, result):
        assert result.point(8, "selfish").fairness < 0.6

    def test_uncontended_cases_fair(self, result):
        for policy in ("selfish", "spread"):
            assert result.point(1, policy).fairness == pytest.approx(1.0)
            assert result.point(2, policy).fairness > 0.95

    def test_format_text(self, result):
        text = result.format_text()
        assert "Multi-user contention" in text
        assert "Jain" in text

    def test_rows_cover_all_points(self, result):
        assert len(result.rows()) == 8
        assert result.point(3, "selfish") is None
