"""Tests for timestamp sources (repro.util.timefmt)."""

import re

from repro.util.timefmt import TimestampSource, counter_source, epoch_ms, utc_now_iso


class TestWallClockHelpers:
    def test_iso_format(self):
        assert re.fullmatch(r"\d{8}T\d{6}Z", utc_now_iso())

    def test_epoch_ms_is_large(self):
        assert epoch_ms() > 1_600_000_000_000  # after Sep 2020


class TestTimestampSource:
    def test_strictly_increasing_under_constant_clock(self):
        src = TimestampSource(now_ms=lambda: 1000)
        values = [src.next() for _ in range(5)]
        assert values == [1000, 1001, 1002, 1003, 1004]

    def test_follows_advancing_clock(self):
        times = iter([10, 50, 900])
        src = TimestampSource(now_ms=lambda: next(times))
        assert [src.next() for _ in range(3)] == [10, 50, 900]

    def test_collision_bump_then_resume(self):
        times = iter([10, 10, 10, 100])
        src = TimestampSource(now_ms=lambda: next(times))
        assert [src.next() for _ in range(4)] == [10, 11, 12, 100]

    def test_counter_source(self):
        src = counter_source()
        assert [src.next() for _ in range(3)] == [1, 2, 3]

    def test_iterator_protocol(self):
        src = counter_source(start=5)
        it = iter(src)
        assert next(it) == 5
        assert next(it) == 6
