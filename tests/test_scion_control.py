"""Tests for segments, beaconing, paths and the combinator (repro.scion)."""

import pytest

from repro.errors import NoPathError, ValidationError
from repro.scion.beaconing import Beaconer
from repro.scion.combinator import combine_paths
from repro.scion.path import Path, PathHop
from repro.scion.segments import ASEntry, PathSegment, SegmentKind
from repro.topology.isd_as import ISDAS

from tests.helpers import build_tiny_world


@pytest.fixture(scope="module")
def topo():
    return build_tiny_world()


@pytest.fixture(scope="module")
def beaconer(topo):
    return Beaconer(topo)


def _entry(ia, ingress, egress):
    return ASEntry(isd_as=ISDAS.parse(ia), ingress=ingress, egress=egress)


class TestSegments:
    def test_valid_segment(self):
        seg = PathSegment(
            kind=SegmentKind.UP,
            entries=(
                _entry("1-ffaa:1:1", None, 1),
                _entry("1-ffaa:0:3", 6, 1),
                _entry("1-ffaa:0:1", 3, None),
            ),
        )
        assert seg.first_as == ISDAS.parse("1-ffaa:1:1")
        assert seg.last_as == ISDAS.parse("1-ffaa:0:1")
        assert seg.n_links == 2

    def test_empty_segment_rejected(self):
        with pytest.raises(ValidationError):
            PathSegment(kind=SegmentKind.UP, entries=())

    def test_terminal_interfaces_enforced(self):
        with pytest.raises(ValidationError):
            PathSegment(
                kind=SegmentKind.UP,
                entries=(_entry("1-ffaa:1:1", 5, 1), _entry("1-ffaa:0:3", 6, None)),
            )

    def test_interior_interfaces_required(self):
        with pytest.raises(ValidationError):
            PathSegment(
                kind=SegmentKind.UP,
                entries=(
                    _entry("1-ffaa:1:1", None, None),
                    _entry("1-ffaa:0:3", 6, None),
                ),
            )

    def test_loop_rejected(self):
        with pytest.raises(ValidationError):
            PathSegment(
                kind=SegmentKind.UP,
                entries=(
                    _entry("1-ffaa:1:1", None, 1),
                    _entry("1-ffaa:1:1", 2, None),
                ),
            )

    def test_reversal_flips_kind_and_interfaces(self):
        seg = PathSegment(
            kind=SegmentKind.UP,
            entries=(
                _entry("1-ffaa:1:1", None, 1),
                _entry("1-ffaa:0:3", 6, None),
            ),
        )
        rev = seg.reversed()
        assert rev.kind is SegmentKind.DOWN
        assert rev.first_as == ISDAS.parse("1-ffaa:0:3")
        assert rev.entries[0].egress == 6
        assert rev.entries[-1].ingress == 1
        # Reversing twice restores the original.
        assert seg.reversed().reversed(SegmentKind.UP) == seg


class TestBeaconing:
    def test_user_up_segments(self, beaconer):
        ups = beaconer.up_segments("1-ffaa:1:1")
        # user -> ap -> core1a and user -> ap -> core1b.
        assert len(ups) == 2
        cores = sorted(str(seg.last_as) for seg in ups)
        assert cores == ["1-ffaa:0:1", "1-ffaa:0:2"]
        assert all(str(seg.first_as) == "1-ffaa:1:1" for seg in ups)

    def test_core_as_has_trivial_up_segment(self, beaconer):
        ups = beaconer.up_segments("1-ffaa:0:1")
        assert len(ups) == 1
        assert ups[0].n_links == 0

    def test_down_segments_are_reversed_ups(self, beaconer):
        downs = beaconer.down_segments("2-ffaa:0:2")
        assert len(downs) == 1
        assert downs[0].kind is SegmentKind.DOWN
        assert str(downs[0].first_as) == "2-ffaa:0:1"
        assert str(downs[0].last_as) == "2-ffaa:0:2"

    def test_core_segments_same_as(self, beaconer):
        segs = beaconer.core_segments("1-ffaa:0:1", "1-ffaa:0:1")
        assert len(segs) == 1 and segs[0].n_links == 0

    def test_core_segments_direct_and_detour(self, beaconer):
        segs = beaconer.core_segments("1-ffaa:0:1", "2-ffaa:0:1")
        lengths = sorted(seg.n_links for seg in segs)
        assert lengths == [1, 2]  # direct, and via core1b

    def test_core_segments_from_non_core_empty(self, beaconer):
        assert beaconer.core_segments("1-ffaa:1:1", "2-ffaa:0:1") == ()

    def test_length_bound_respected(self, topo):
        tight = Beaconer(topo, max_core_links=1)
        segs = tight.core_segments("1-ffaa:0:1", "2-ffaa:0:1")
        assert [seg.n_links for seg in segs] == [1]

    def test_caching_and_invalidate(self, topo):
        b = Beaconer(topo)
        first = b.up_segments("1-ffaa:1:1")
        assert b.up_segments("1-ffaa:1:1") is first
        b.invalidate()
        assert b.up_segments("1-ffaa:1:1") is not first


class TestPath:
    @pytest.fixture(scope="class")
    def path(self, beaconer):
        return combine_paths(beaconer, "1-ffaa:1:1", "2-ffaa:0:2")[0]

    def test_endpoints(self, path):
        assert str(path.src) == "1-ffaa:1:1"
        assert str(path.dst) == "2-ffaa:0:2"

    def test_hop_count(self, path):
        # user, ap, core1x, core2, leaf
        assert path.hop_count == 5

    def test_isd_set(self, path):
        assert path.isd_set() == frozenset({1, 2})

    def test_sequence_and_display(self, path):
        seq = path.sequence()
        assert seq.count("#") == path.hop_count
        display = path.hops_display()
        assert display.startswith("1-ffaa:1:1 ")
        assert ">" in display

    def test_fingerprint_stable(self, path):
        assert path.fingerprint() == path.fingerprint()
        assert len(path.fingerprint()) == 16

    def test_traversals_resolve(self, path, topo):
        steps = path.traversals(topo)
        assert len(steps) == path.n_links
        assert steps[0].sender == path.src

    def test_static_latency_positive(self, path, topo):
        assert path.static_latency_ms(topo) > 5.0

    def test_resolve_mtu(self, path, topo):
        assert path.resolve_mtu(topo) == 1472

    def test_transits(self, path):
        assert path.transits("1-ffaa:0:3")
        assert not path.transits("9-0:0:9")

    def test_loop_path_rejected(self):
        hops = (
            PathHop(isd_as=ISDAS.parse("1-0:0:1"), ingress=None, egress=1),
            PathHop(isd_as=ISDAS.parse("1-0:0:2"), ingress=1, egress=2),
            PathHop(isd_as=ISDAS.parse("1-0:0:1"), ingress=2, egress=None),
        )
        with pytest.raises(ValidationError):
            Path(src=ISDAS.parse("1-0:0:1"), dst=ISDAS.parse("1-0:0:1"), hops=hops)

    def test_endpoint_mismatch_rejected(self):
        hops = (
            PathHop(isd_as=ISDAS.parse("1-0:0:1"), ingress=None, egress=1),
            PathHop(isd_as=ISDAS.parse("1-0:0:2"), ingress=1, egress=None),
        )
        with pytest.raises(ValidationError):
            Path(src=ISDAS.parse("1-0:0:9"), dst=ISDAS.parse("1-0:0:2"), hops=hops)


class TestCombinator:
    def test_paths_ranked_by_hop_count(self, beaconer):
        paths = combine_paths(beaconer, "1-ffaa:1:1", "2-ffaa:0:2")
        counts = [p.hop_count for p in paths]
        assert counts == sorted(counts)

    def test_no_duplicate_sequences(self, beaconer):
        paths = combine_paths(beaconer, "1-ffaa:1:1", "2-ffaa:0:2")
        sequences = [p.sequence() for p in paths]
        assert len(sequences) == len(set(sequences))

    def test_expected_path_count_to_leaf(self, beaconer):
        # 2 ups x {direct, via-other-core} cores x 1 down, all loop-free:
        # up(core1a): core1a->core2 direct + core1a->core1b->core2 = 2
        # up(core1b): symmetric = 2  -> 4 total.
        paths = combine_paths(beaconer, "1-ffaa:1:1", "2-ffaa:0:2")
        assert len(paths) == 4

    def test_loop_free(self, beaconer):
        for p in combine_paths(beaconer, "1-ffaa:1:1", "2-ffaa:0:2"):
            ases = p.ases()
            assert len(ases) == len(set(ases))

    def test_destination_is_core(self, beaconer):
        paths = combine_paths(beaconer, "1-ffaa:1:1", "2-ffaa:0:1")
        assert min(p.hop_count for p in paths) == 4
        assert all(str(p.dst) == "2-ffaa:0:1" for p in paths)

    def test_destination_is_own_core(self, beaconer):
        paths = combine_paths(beaconer, "1-ffaa:1:1", "1-ffaa:0:1")
        assert min(p.hop_count for p in paths) == 3

    def test_same_src_dst_rejected(self, beaconer):
        with pytest.raises(NoPathError):
            combine_paths(beaconer, "1-ffaa:1:1", "1-ffaa:1:1")

    def test_max_paths_truncates(self, beaconer):
        paths = combine_paths(beaconer, "1-ffaa:1:1", "2-ffaa:0:2", max_paths=2)
        assert len(paths) == 2

    def test_mtu_resolved_on_combined_paths(self, beaconer):
        for p in combine_paths(beaconer, "1-ffaa:1:1", "2-ffaa:0:2"):
            assert p.mtu == 1472
