"""Fault isolation, fault injection and determinism of parallel campaigns."""

import json

import pytest

from repro.crypto.rsa import keypair_from_seed
from repro.docdb.auth import SIGNATURE_FIELD, SignedDocumentVerifier
from repro.docdb.client import DocDBClient
from repro.errors import MeasurementError
from repro.netsim.network import ServerHealth
from repro.scion.snet import ScionHost
from repro.scionlab.defaults import study_destination_ids
from repro.suite import metrics as m
from repro.suite.cli import seed_servers
from repro.suite.collect import PathsCollector
from repro.suite.config import PATHS_COLLECTION, STATS_COLLECTION, SuiteConfig
from repro.suite.faults import DataLossFault, FaultPlan, ServerOutage
from repro.suite.parallel import ParallelCampaign
from repro.suite.runner import TestRunner
from repro.topology.scionlab import MY_AS, scionlab_network_config

SEED = 3


def fresh_env(dest_ids, **config_kwargs):
    client = DocDBClient()
    db = client["upin"]
    seed_servers(db)
    host = ScionHost.scionlab(seed=SEED)
    config = SuiteConfig(iterations=1, destination_ids=list(dest_ids), **config_kwargs)
    PathsCollector(host, db, config).collect()
    return host, db, config


def make_campaign(host, db, config, **kwargs):
    return ParallelCampaign(
        host.topology, MY_AS, db, config,
        base_config=scionlab_network_config(seed=SEED), seed=SEED,
        **kwargs,
    )


def paths_per_destination(db):
    counts = {}
    for doc in db[PATHS_COLLECTION].find():
        counts[doc["server_id"]] = counts.get(doc["server_id"], 0) + 1
    return counts


class TestFaultIsolation:
    """§4.1.2: one bad destination must never kill the fleet."""

    def test_one_crashing_worker_does_not_abort_the_fleet(self):
        dest_ids = study_destination_ids()
        assert len(dest_ids) >= 5
        bad = dest_ids[0]
        host, db, config = fresh_env(
            dest_ids, continue_on_error=False, max_retries=0
        )
        plan = FaultPlan(outages=[ServerOutage(bad, 0, 1, ServerHealth.DOWN)])
        campaign = make_campaign(host, db, config, faults=plan)
        report = campaign.run(iterations=1, max_workers=4)

        # Every destination is accounted for; exactly one failed.
        assert set(report.per_destination) == set(dest_ids)
        assert set(report.failed_destinations) == {bad}
        assert "unreachable" in report.failed_destinations[bad]
        assert report.per_destination[bad].failed
        assert report.per_destination[bad].stats_stored == 0

        # The healthy destinations completed in full...
        counts = paths_per_destination(db)
        healthy_total = sum(counts[d] for d in dest_ids if d != bad)
        assert report.stats_stored == healthy_total

        # ...and match a serial campaign over the healthy subset.
        healthy = [d for d in dest_ids if d != bad]
        shost, sdb, sconfig = fresh_env(healthy)
        serial = TestRunner(shost, sdb, sconfig).run()
        assert report.stats_stored == serial.stats_stored
        assert report.paths_tested == serial.paths_tested

    def test_fail_fast_escape_hatch_reraises(self):
        dest_ids = [3, 5]
        host, db, config = fresh_env(
            dest_ids, continue_on_error=False, max_retries=0
        )
        plan = FaultPlan(outages=[ServerOutage(3, 0, 1, ServerHealth.DOWN)])
        campaign = make_campaign(host, db, config, faults=plan, fail_fast=True)
        with pytest.raises(MeasurementError):
            campaign.run(iterations=1, max_workers=2)

    def test_parallel_report_format_text(self):
        host, db, config = fresh_env([3, 5], continue_on_error=False, max_retries=0)
        plan = FaultPlan(outages=[ServerOutage(3, 0, 1, ServerHealth.DOWN)])
        report = make_campaign(host, db, config, faults=plan).run(
            iterations=1, max_workers=2
        )
        text = report.format_text()
        assert "destinations: 1 ok, 1 failed" in text
        assert "- 3: ServerUnreachableError" in text


class TestParallelFaultInjection:
    """FaultPlan and the signer must be live in parallel mode."""

    def test_fault_plan_is_plumbed_through_workers(self):
        host, db, config = fresh_env([3, 5], max_retries=0)
        plan = FaultPlan(
            outages=[ServerOutage(3, 0, 1, ServerHealth.DOWN)],
            data_loss=DataLossFault(probability=1.0),
        )
        campaign = make_campaign(host, db, config, faults=plan)
        report = campaign.run(iterations=2, max_workers=2)

        counts = paths_per_destination(db)
        # Destination 3 loses its iteration-1 batch (iteration 0 produced
        # nothing: the server was down); destination 5 loses both batches.
        expected_lost = counts[3] + 2 * counts[5]
        assert plan.injected_outages >= 1
        assert plan.injected_losses == 3
        assert report.stats_stored == 0
        assert report.stats_lost == expected_lost
        # Non-double-counted: destination 5 lost exactly 2 batches' worth,
        # not 1x the first + 2x the cumulative counter.
        assert report.per_destination[5].stats_lost == 2 * counts[5]
        # The loss shows up in the merged telemetry too.
        assert m.counter_value(report.metrics, m.DOCS_LOST) == expected_lost
        assert m.counter_value(report.metrics, m.FLUSH_FAILURES) == 3

    def test_signer_is_plumbed_through_workers(self):
        host, db, config = fresh_env([3, 5])
        kp = keypair_from_seed(9, bits=256)
        verifier = SignedDocumentVerifier()
        verifier.register_writer("17-ffaa:1:e01", kp.public)
        db[STATS_COLLECTION].validator = verifier
        campaign = make_campaign(
            host, db, config, signer=kp, signer_subject="17-ffaa:1:e01"
        )
        report = campaign.run(iterations=1, max_workers=2)
        assert report.stats_stored == 8
        doc = db[STATS_COLLECTION].find_one()
        assert SIGNATURE_FIELD in doc
        verifier(doc)  # signature survives storage


def run_campaign_docs(max_workers, fault_plan_factory=None):
    """One full parallel campaign; returns the stored docs, serialized."""
    host, db, config = fresh_env([3, 5], max_retries=0)
    faults = fault_plan_factory() if fault_plan_factory is not None else None
    campaign = make_campaign(host, db, config, faults=faults)
    campaign.run(iterations=2, max_workers=max_workers)
    docs = db[STATS_COLLECTION].find(sort=[("_id", 1)])
    return json.dumps(docs, sort_keys=True), faults


class TestSchedulingIndependence:
    def test_byte_identical_across_worker_counts(self):
        solo, _ = run_campaign_docs(max_workers=1)
        fleet, _ = run_campaign_docs(max_workers=8)
        assert solo == fleet

    def test_byte_identical_under_active_fault_plan(self):
        def plan():
            return FaultPlan(
                outages=[ServerOutage(3, 0, 1, ServerHealth.DOWN)],
                data_loss=DataLossFault(probability=0.5, seed=99),
            )

        solo, plan_a = run_campaign_docs(max_workers=1, fault_plan_factory=plan)
        fleet, plan_b = run_campaign_docs(max_workers=8, fault_plan_factory=plan)
        assert solo == fleet
        # The injected-fault tallies are scheduling-independent as well.
        assert plan_a.injected_losses == plan_b.injected_losses
        assert plan_a.injected_outages == plan_b.injected_outages

    def test_scoped_views_share_counters_with_parent(self):
        plan = FaultPlan(data_loss=DataLossFault(probability=1.0))
        view = plan.scoped(3)
        with pytest.raises(Exception):
            view.flush_hook([{"_id": "x"}])
        assert plan.injected_losses == 1
