"""Tests for the monitoring scheduler and per-link latency attribution."""

import pytest

from repro.analysis.linklat import (
    attribute_link_latency,
    dominant_links,
    format_attribution,
)
from repro.docdb.client import DocDBClient
from repro.errors import ValidationError
from repro.scion.snet import ScionHost
from repro.suite.cli import seed_servers
from repro.suite.config import STATS_COLLECTION, SuiteConfig
from repro.suite.scheduler import MonitoringScheduler


@pytest.fixture()
def env():
    client = DocDBClient()
    db = client["upin"]
    seed_servers(db)
    host = ScionHost.scionlab(seed=4)
    config = SuiteConfig(iterations=1, destination_ids=[3])
    return host, db, config


class TestMonitoringScheduler:
    def test_rounds_accumulate_samples(self, env):
        host, db, config = env
        scheduler = MonitoringScheduler(host, db, config, period_s=600.0)
        report = scheduler.run(rounds=3)
        assert len(report.rounds) == 3
        assert report.stats_stored == 3 * 6  # 6 Magdeburg paths per round
        assert db[STATS_COLLECTION].count_documents() == 18

    def test_rounds_start_on_period_boundaries(self, env):
        host, db, config = env
        scheduler = MonitoringScheduler(host, db, config, period_s=600.0)
        report = scheduler.run(rounds=3)
        starts = [r.started_at_s for r in report.rounds]
        # Collection happens inside round 0, so boundaries are exact.
        assert starts[1] - starts[0] == pytest.approx(600.0)
        assert starts[2] - starts[1] == pytest.approx(600.0)
        assert report.overrun_rounds == 0

    def test_overrun_rounds_run_back_to_back(self, env):
        host, db, config = env
        # A 6-path round needs 90 simulated seconds; the period is 10.
        scheduler = MonitoringScheduler(host, db, config, period_s=10.0)
        report = scheduler.run(rounds=3)
        assert report.overrun_rounds == 2
        for prev, nxt in zip(report.rounds, report.rounds[1:]):
            assert nxt.started_at_s == pytest.approx(prev.finished_at_s)

    def test_recollection_cadence(self, env):
        host, db, config = env
        scheduler = MonitoringScheduler(
            host, db, config, period_s=600.0, recollect_every=2
        )
        report = scheduler.run(rounds=4)
        assert [r.recollected for r in report.rounds] == [True, False, True, False]

    def test_timestamps_partition_by_round(self, env):
        host, db, config = env
        scheduler = MonitoringScheduler(host, db, config, period_s=600.0)
        report = scheduler.run(rounds=2)
        r0, r1 = report.rounds
        docs = db[STATS_COLLECTION].find()
        in_r0 = [d for d in docs if d["timestamp_ms"] < r1.started_at_s * 1000]
        assert len(in_r0) == r0.stats_stored

    def test_validation(self, env):
        host, db, config = env
        with pytest.raises(ValidationError):
            MonitoringScheduler(host, db, config, period_s=0.0)
        with pytest.raises(ValidationError):
            MonitoringScheduler(host, db, config, period_s=1.0, recollect_every=0)
        scheduler = MonitoringScheduler(host, db, config, period_s=1.0)
        with pytest.raises(ValidationError):
            scheduler.run(rounds=0)


class TestLinkLatencyAttribution:
    @pytest.fixture(scope="class")
    def host(self):
        return ScionHost.scionlab(seed=6)

    def test_detour_links_dominate(self, host):
        """The Frankfurt->Singapore / Frankfurt->Ohio hauls must rank top,
        which is §6.1's per-link localisation of the Fig 5 layers."""
        paths = host.paths("16-ffaa:0:1002", max_paths=None)
        kept = [p for p in paths if p.hop_count <= paths[0].hop_count + 1]
        attribution = attribute_link_latency(host, kept)
        top = dominant_links(attribution, top_k=4)
        top_keys = " | ".join(l.link_key for l in top)
        assert "16-ffaa:0:1007" in top_keys  # Singapore haul
        assert "16-ffaa:0:1004" in top_keys  # Ohio haul

    def test_every_traversed_link_attributed(self, host):
        paths = host.paths("19-ffaa:0:1303", max_paths=2)
        attribution = attribute_link_latency(host, paths)
        expected_links = set()
        for p in paths:
            ases = [str(a) for a in p.ases()]
            expected_links.update(f"{a} -> {b}" for a, b in zip(ases, ases[1:]))
        assert {l.link_key for l in attribution} == expected_links

    def test_increments_nonnegative_and_counted(self, host):
        paths = host.paths("19-ffaa:0:1303", max_paths=3)
        attribution = attribute_link_latency(host, paths, labels=["a", "b", "c"])
        for link in attribution:
            assert link.mean_increment_ms >= 0
            assert link.max_increment_ms >= link.mean_increment_ms - 1e-9
            assert 1 <= link.samples <= 3
            assert link.paths and set(link.paths) <= {"a", "b", "c"}

    def test_format_attribution(self, host):
        paths = host.paths("19-ffaa:0:1303", max_paths=1)
        text = format_attribution(attribute_link_latency(host, paths))
        assert "Per-link latency attribution" in text
        assert "->" in text
