"""Tests for the monitoring scheduler and per-link latency attribution."""

import pytest

from repro.analysis.linklat import (
    attribute_link_latency,
    dominant_links,
    format_attribution,
)
from repro.docdb.client import DocDBClient
from repro.errors import ValidationError
from repro.scion.snet import ScionHost
from repro.suite.cli import seed_servers
from repro.suite.config import STATS_COLLECTION, SuiteConfig
from repro.suite.scheduler import MonitoringScheduler


@pytest.fixture()
def env():
    client = DocDBClient()
    db = client["upin"]
    seed_servers(db)
    host = ScionHost.scionlab(seed=4)
    config = SuiteConfig(iterations=1, destination_ids=[3])
    return host, db, config


class TestMonitoringScheduler:
    def test_rounds_accumulate_samples(self, env):
        host, db, config = env
        scheduler = MonitoringScheduler(host, db, config, period_s=600.0)
        report = scheduler.run(rounds=3)
        assert len(report.rounds) == 3
        assert report.stats_stored == 3 * 6  # 6 Magdeburg paths per round
        assert db[STATS_COLLECTION].count_documents() == 18

    def test_rounds_start_on_period_boundaries(self, env):
        host, db, config = env
        scheduler = MonitoringScheduler(host, db, config, period_s=600.0)
        report = scheduler.run(rounds=3)
        starts = [r.started_at_s for r in report.rounds]
        # Collection happens inside round 0, so boundaries are exact.
        assert starts[1] - starts[0] == pytest.approx(600.0)
        assert starts[2] - starts[1] == pytest.approx(600.0)
        assert report.overrun_rounds == 0

    def test_overrun_rounds_run_back_to_back(self, env):
        host, db, config = env
        # A 6-path round needs 90 simulated seconds; the period is 10.
        scheduler = MonitoringScheduler(host, db, config, period_s=10.0)
        report = scheduler.run(rounds=3)
        assert report.overrun_rounds == 2
        for prev, nxt in zip(report.rounds, report.rounds[1:]):
            assert nxt.started_at_s == pytest.approx(prev.finished_at_s)

    def test_recollection_cadence(self, env):
        host, db, config = env
        scheduler = MonitoringScheduler(
            host, db, config, period_s=600.0, recollect_every=2
        )
        report = scheduler.run(rounds=4)
        assert [r.recollected for r in report.rounds] == [True, False, True, False]

    def test_timestamps_partition_by_round(self, env):
        host, db, config = env
        scheduler = MonitoringScheduler(host, db, config, period_s=600.0)
        report = scheduler.run(rounds=2)
        r0, r1 = report.rounds
        docs = db[STATS_COLLECTION].find()
        in_r0 = [d for d in docs if d["timestamp_ms"] < r1.started_at_s * 1000]
        assert len(in_r0) == r0.stats_stored

    def test_validation(self, env):
        host, db, config = env
        with pytest.raises(ValidationError):
            MonitoringScheduler(host, db, config, period_s=0.0)
        with pytest.raises(ValidationError):
            MonitoringScheduler(host, db, config, period_s=1.0, recollect_every=0)
        scheduler = MonitoringScheduler(host, db, config, period_s=1.0)
        with pytest.raises(ValidationError):
            scheduler.run(rounds=0)


class _ScriptedRunner:
    """Stand-in runner whose round durations are scripted exactly."""

    def __init__(self, clock, durations):
        self.clock = clock
        self.durations = list(durations)
        self.calls = 0

    def run(self, iterations=1):
        dt = self.durations[min(self.calls, len(self.durations) - 1)]
        self.calls += 1
        self.clock.advance(dt)

        class _Report:
            stats_stored = 0
            measurement_errors = 0

        return _Report()


class _NoopCollector:
    def collect(self):
        return None


class TestSchedulerOverrunSemantics:
    """Regression pins for the fixed-grid overrun behaviour.

    The scheduler's contract: round ``i`` is *scheduled* for the fixed
    boundary ``origin + i * period`` and *starts* at
    ``max(boundary, now)``.  Overrunning rounds therefore run
    back-to-back (no skipped rounds, no growing backlog), and once the
    rounds get fast again the start times re-align to the original
    grid — the grid never drifts.
    """

    def _scripted_scheduler(self, env, durations, period_s):
        host, db, config = env
        scheduler = MonitoringScheduler(host, db, config, period_s=period_s)
        scheduler.runner = _ScriptedRunner(host.clock, durations)
        scheduler.collector = _NoopCollector()
        return host, scheduler

    def test_scheduled_at_stays_on_fixed_grid(self, env):
        host, scheduler = self._scripted_scheduler(env, [25.0], period_s=10.0)
        origin = host.clock.now_s
        report = scheduler.run(rounds=4)
        assert [r.scheduled_at_s for r in report.rounds] == [
            pytest.approx(origin + i * 10.0) for i in range(4)
        ]

    def test_overrun_round_starts_immediately_after_previous(self, env):
        host, scheduler = self._scripted_scheduler(env, [25.0], period_s=10.0)
        report = scheduler.run(rounds=4)
        for prev, nxt in zip(report.rounds, report.rounds[1:]):
            assert nxt.started_at_s == pytest.approx(prev.finished_at_s)
            assert nxt.lag_s > 0
        assert report.overrun_rounds == 3

    def test_grid_realigns_after_recovery(self, env):
        # One slow round (25 s), then fast 2 s rounds on a 10 s period:
        # boundaries 0/10/20/30/40; starts 0/25/27/30/40 — rounds 3 and
        # 4 are back ON the original grid, not on a drifted one.
        host, scheduler = self._scripted_scheduler(
            env, [25.0, 2.0, 2.0, 2.0, 2.0], period_s=10.0
        )
        origin = host.clock.now_s
        report = scheduler.run(rounds=5)
        starts = [r.started_at_s - origin for r in report.rounds]
        assert starts == [
            pytest.approx(0.0),
            pytest.approx(25.0),
            pytest.approx(27.0),
            pytest.approx(30.0),
            pytest.approx(40.0),
        ]
        assert report.rounds[3].lag_s == pytest.approx(0.0)
        assert report.rounds[4].lag_s == pytest.approx(0.0)
        assert report.overrun_rounds == 2

    def test_no_round_is_skipped_under_sustained_overrun(self, env):
        host, scheduler = self._scripted_scheduler(env, [35.0], period_s=10.0)
        report = scheduler.run(rounds=6)
        assert [r.index for r in report.rounds] == list(range(6))

    def test_round_hooks_fire_in_order_with_each_record(self, env):
        host, scheduler = self._scripted_scheduler(env, [5.0], period_s=10.0)
        seen = []
        scheduler.add_round_hook(lambda rec: seen.append(("a", rec.index)))
        scheduler.add_round_hook(lambda rec: seen.append(("b", rec.index)))
        report = scheduler.run(rounds=3)
        assert seen == [
            ("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)
        ]
        assert len(report.rounds) == 3

    def test_hook_runs_on_sim_clock_at_round_end(self, env):
        host, scheduler = self._scripted_scheduler(env, [5.0], period_s=10.0)
        at = []
        scheduler.add_round_hook(lambda rec: at.append(host.clock.now_s))
        report = scheduler.run(rounds=2)
        assert at == [
            pytest.approx(r.finished_at_s) for r in report.rounds
        ]


class TestLinkLatencyAttribution:
    @pytest.fixture(scope="class")
    def host(self):
        return ScionHost.scionlab(seed=6)

    def test_detour_links_dominate(self, host):
        """The Frankfurt->Singapore / Frankfurt->Ohio hauls must rank top,
        which is §6.1's per-link localisation of the Fig 5 layers."""
        paths = host.paths("16-ffaa:0:1002", max_paths=None)
        kept = [p for p in paths if p.hop_count <= paths[0].hop_count + 1]
        attribution = attribute_link_latency(host, kept)
        top = dominant_links(attribution, top_k=4)
        top_keys = " | ".join(l.link_key for l in top)
        assert "16-ffaa:0:1007" in top_keys  # Singapore haul
        assert "16-ffaa:0:1004" in top_keys  # Ohio haul

    def test_every_traversed_link_attributed(self, host):
        paths = host.paths("19-ffaa:0:1303", max_paths=2)
        attribution = attribute_link_latency(host, paths)
        expected_links = set()
        for p in paths:
            ases = [str(a) for a in p.ases()]
            expected_links.update(f"{a} -> {b}" for a, b in zip(ases, ases[1:]))
        assert {l.link_key for l in attribution} == expected_links

    def test_increments_nonnegative_and_counted(self, host):
        paths = host.paths("19-ffaa:0:1303", max_paths=3)
        attribution = attribute_link_latency(host, paths, labels=["a", "b", "c"])
        for link in attribution:
            assert link.mean_increment_ms >= 0
            assert link.max_increment_ms >= link.mean_increment_ms - 1e-9
            assert 1 <= link.samples <= 3
            assert link.paths and set(link.paths) <= {"a", "b", "c"}

    def test_format_attribution(self, host):
        paths = host.paths("19-ffaa:0:1303", max_paths=1)
        text = format_attribution(attribute_link_latency(host, paths))
        assert "Per-link latency attribution" in text
        assert "->" in text
