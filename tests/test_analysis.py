"""Tests for the analysis layer (repro.analysis)."""

import pytest

from repro.analysis.bandwidth import bandwidth_by_path, summarize
from repro.analysis.latency import (
    latency_by_isd_group,
    latency_by_path,
    latency_layers,
)
from repro.analysis.loss import loss_by_path, shared_ases, total_loss_cluster
from repro.analysis.report import format_table
from repro.analysis.stats import cluster_means, whisker_stats
from repro.errors import ValidationError


class TestWhiskerStats:
    def test_basic_quartiles(self):
        w = whisker_stats([1, 2, 3, 4, 5])
        assert w.n == 5
        assert w.median == 3
        assert w.q1 == 2 and w.q3 == 4
        assert w.mean == 3
        assert w.minimum == 1 and w.maximum == 5

    def test_single_sample(self):
        w = whisker_stats([7.0])
        assert w.median == 7.0 and w.spread == 0.0

    def test_none_filtered(self):
        assert whisker_stats([1.0, None, 3.0]).n == 2

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            whisker_stats([])

    def test_outliers_detected(self):
        values = [10.0] * 20 + [100.0]
        w = whisker_stats(values)
        assert w.outliers == (100.0,)
        assert w.whisker_high == 10.0
        assert w.maximum == 100.0

    def test_whiskers_within_fences(self):
        w = whisker_stats(list(range(100)) + [1000])
        assert w.whisker_high <= w.q3 + 1.5 * w.iqr + 1e-9
        assert w.whisker_low >= w.q1 - 1.5 * w.iqr - 1e-9

    def test_format_compact(self):
        assert "mean=" in whisker_stats([1, 2, 3]).format_compact()


class TestClusterMeans:
    def test_three_layers(self):
        values = [43, 44, 45, 212, 214, 340, 342]
        clusters = cluster_means(values)
        assert len(clusters) == 3
        assert clusters[0] == [43, 44, 45]

    def test_single_cluster_for_tight_values(self):
        assert len(cluster_means([40.0, 40.5, 41.0, 41.5])) == 1

    def test_empty_and_singleton(self):
        assert cluster_means([]) == []
        assert cluster_means([5.0]) == [[5.0]]


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["a", "bbb"], [[1, 2.5], ["xx", None]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert "-" in lines[2]
        assert "2.50" in lines[3]
        assert "-" in lines[4]  # None cell

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert len(text.splitlines()) == 2


class TestAnalysesOnCampaign:
    def test_latency_by_path_counts(self, measured_world):
        series = latency_by_path(measured_world.db, 1)
        assert len(series) == 22
        assert all(s.stats.n == 2 for s in series)

    def test_latency_layers_found(self, measured_world):
        series = latency_by_path(measured_world.db, 1)
        layers = latency_layers(series)
        assert len(layers) == 3

    def test_isd_grouping(self, measured_world):
        groups = latency_by_isd_group(measured_world.db, 1)
        keys = {(g.isds, g.hop_count) for g in groups}
        assert ((16, 17, 19), 6) in keys
        assert ((16, 17, 19), 7) in keys
        assert ((16, 17, 19, 24), 7) in keys

    def test_isd_grouping_exclusion_shrinks_spread(self, measured_world):
        all_groups = latency_by_isd_group(measured_world.db, 1)
        filtered = latency_by_isd_group(
            measured_world.db, 1,
            exclude_transit_ases=["16-ffaa:0:1004", "16-ffaa:0:1007"],
        )

        def spread7(groups):
            return max(
                (g.stats.spread for g in groups if g.hop_count == 7), default=0
            )

        assert spread7(filtered) < spread7(all_groups)

    def test_bandwidth_by_path(self, measured_world):
        series = bandwidth_by_path(measured_world.db, 3, target_mbps=12.0)
        assert len(series) == 6
        summary = summarize(series)
        assert summary.mtu_beats_small
        assert summary.downstream_beats_upstream

    def test_bandwidth_target_filter(self, measured_world):
        assert bandwidth_by_path(measured_world.db, 3, target_mbps=150.0) == []

    def test_loss_by_path(self, measured_world):
        series = loss_by_path(measured_world.db, 1)
        assert len(series) == 22
        total = total_loss_cluster(series)
        assert total == []  # no congestion episodes in this campaign
        assert all(s.mean_loss_pct < 15 for s in series)

    def test_shared_ases_in_path_order(self, measured_world):
        common = shared_ases(measured_world.db, ["1_0", "1_1"])
        assert common[0] == "17-ffaa:1:e01"
        assert "16-ffaa:0:1002" in common
