"""Tests for Mongo-style filter matching (repro.docdb.query)."""

import pytest

from repro.docdb.query import matches
from repro.errors import QueryError

DOC = {
    "_id": "2_15",
    "server_id": 2,
    "avg_latency_ms": 42.5,
    "loss_pct": 0.0,
    "isds": [16, 17, 19],
    "hops": [
        {"isd_as": "17-ffaa:1:e01", "ifid": 1},
        {"isd_as": "16-ffaa:0:1002", "ifid": 2},
    ],
    "meta": {"mtu": 1472, "status": "alive"},
    "note": None,
}


class TestEquality:
    def test_bare_equality(self):
        assert matches(DOC, {"server_id": 2})
        assert not matches(DOC, {"server_id": 3})

    def test_int_float_equality(self):
        assert matches(DOC, {"server_id": 2.0})

    def test_dotted_path(self):
        assert matches(DOC, {"meta.status": "alive"})

    def test_array_contains_scalar(self):
        assert matches(DOC, {"isds": 17})
        assert not matches(DOC, {"isds": 99})

    def test_whole_array_equality(self):
        assert matches(DOC, {"isds": [16, 17, 19]})
        assert not matches(DOC, {"isds": [16, 17]})

    def test_eq_ne(self):
        assert matches(DOC, {"server_id": {"$eq": 2}})
        assert matches(DOC, {"server_id": {"$ne": 3}})
        assert not matches(DOC, {"server_id": {"$ne": 2}})

    def test_ne_is_complement_of_eq_on_arrays(self):
        """Regression: $ne fanned out existentially over array elements,
        so ``{"isds": [16, 17, 19]}`` matched both $eq:16 and $ne:16."""
        assert matches(DOC, {"isds": {"$eq": 16}})
        assert not matches(DOC, {"isds": {"$ne": 16}})
        assert matches(DOC, {"isds": {"$ne": 99}})
        assert not matches(DOC, {"isds": {"$nin": [16]}})
        assert matches(DOC, {"isds": {"$nin": [99]}})

    def test_none_matching(self):
        assert matches(DOC, {"note": None})

    def test_empty_filter_matches(self):
        assert matches(DOC, {})


class TestComparisons:
    def test_gt_gte(self):
        assert matches(DOC, {"avg_latency_ms": {"$gt": 40}})
        assert matches(DOC, {"avg_latency_ms": {"$gte": 42.5}})
        assert not matches(DOC, {"avg_latency_ms": {"$gt": 42.5}})

    def test_lt_lte(self):
        assert matches(DOC, {"avg_latency_ms": {"$lt": 50}})
        assert matches(DOC, {"avg_latency_ms": {"$lte": 42.5}})

    def test_range_combined(self):
        assert matches(DOC, {"avg_latency_ms": {"$gt": 40, "$lt": 45}})
        assert not matches(DOC, {"avg_latency_ms": {"$gt": 40, "$lt": 42}})

    def test_string_comparison(self):
        assert matches(DOC, {"meta.status": {"$gte": "alive"}})

    def test_cross_type_comparison_never_matches(self):
        assert not matches(DOC, {"meta.status": {"$gt": 5}})

    def test_array_element_comparison(self):
        assert matches(DOC, {"isds": {"$gt": 18}})  # 19 qualifies


class TestMembership:
    def test_in(self):
        assert matches(DOC, {"server_id": {"$in": [1, 2, 3]}})
        assert not matches(DOC, {"server_id": {"$in": [4, 5]}})

    def test_nin(self):
        assert matches(DOC, {"server_id": {"$nin": [4, 5]}})

    def test_in_requires_list(self):
        with pytest.raises(QueryError):
            matches(DOC, {"server_id": {"$in": 2}})


class TestFieldAndRegex:
    def test_exists(self):
        assert matches(DOC, {"meta.mtu": {"$exists": True}})
        assert matches(DOC, {"nope": {"$exists": False}})
        assert not matches(DOC, {"nope": {"$exists": True}})

    def test_regex(self):
        assert matches(DOC, {"_id": {"$regex": r"^2_\d+$"}})
        assert not matches(DOC, {"_id": {"$regex": r"^3_"}})

    def test_regex_options_case_insensitive(self):
        assert matches(DOC, {"meta.status": {"$regex": "ALIVE", "$options": "i"}})

    def test_regex_on_non_string_no_match(self):
        assert not matches(DOC, {"server_id": {"$regex": "2"}})

    def test_mod(self):
        assert matches(DOC, {"server_id": {"$mod": [2, 0]}})
        assert not matches(DOC, {"server_id": {"$mod": [2, 1]}})

    def test_mod_bad_operand(self):
        with pytest.raises(QueryError):
            matches(DOC, {"server_id": {"$mod": [2]}})


class TestArrayOperators:
    def test_size(self):
        assert matches(DOC, {"isds": {"$size": 3}})
        assert not matches(DOC, {"isds": {"$size": 2}})

    def test_all(self):
        assert matches(DOC, {"isds": {"$all": [16, 19]}})
        assert not matches(DOC, {"isds": {"$all": [16, 99]}})

    def test_elem_match(self):
        assert matches(DOC, {"hops": {"$elemMatch": {"isd_as": "16-ffaa:0:1002", "ifid": 2}}})
        assert not matches(
            DOC, {"hops": {"$elemMatch": {"isd_as": "16-ffaa:0:1002", "ifid": 1}}}
        )

    def test_elem_match_requires_filter(self):
        with pytest.raises(QueryError):
            matches(DOC, {"hops": {"$elemMatch": 5}})


class TestLogical:
    def test_and(self):
        assert matches(DOC, {"$and": [{"server_id": 2}, {"loss_pct": 0.0}]})
        assert not matches(DOC, {"$and": [{"server_id": 2}, {"loss_pct": 1.0}]})

    def test_or(self):
        assert matches(DOC, {"$or": [{"server_id": 99}, {"loss_pct": 0.0}]})
        assert not matches(DOC, {"$or": [{"server_id": 99}, {"loss_pct": 1.0}]})

    def test_nor(self):
        assert matches(DOC, {"$nor": [{"server_id": 99}, {"loss_pct": 1.0}]})

    def test_not_operator(self):
        assert matches(DOC, {"avg_latency_ms": {"$not": {"$gt": 100}}})
        assert not matches(DOC, {"avg_latency_ms": {"$not": {"$lt": 100}}})

    def test_implicit_and_of_fields(self):
        assert matches(DOC, {"server_id": 2, "meta.status": "alive"})

    def test_logical_requires_list(self):
        with pytest.raises(QueryError):
            matches(DOC, {"$and": {"server_id": 2}})

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            matches(DOC, {"server_id": {"$frobnicate": 1}})

    def test_unknown_top_level_operator_rejected(self):
        with pytest.raises(QueryError):
            matches(DOC, {"$xor": []})

    def test_filter_must_be_dict(self):
        with pytest.raises(QueryError):
            matches(DOC, ["server_id", 2])
