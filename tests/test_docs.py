"""The documentation is part of tier-1: links resolve, examples run.

CI has a dedicated ``docs`` job running the same two checks
(``tools/check_md_links.py`` and ``python -m doctest
docs/DATABASE.md``); these tests keep them enforced locally too.
"""

from __future__ import annotations

import doctest
import importlib.util
import os

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(__file__), os.pardir)
)


def _load_link_checker():
    spec = importlib.util.spec_from_file_location(
        "check_md_links",
        os.path.join(REPO_ROOT, "tools", "check_md_links.py"),
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_markdown_links_resolve(capsys):
    checker = _load_link_checker()
    broken = checker.main([])
    output = capsys.readouterr().out
    assert broken == 0, f"broken documentation links:\n{output}"
    # The default set must include the database reference.
    assert any("DATABASE.md" in f for f in checker.default_files())


def test_database_md_doctest():
    results = doctest.testfile(
        os.path.join(REPO_ROOT, "docs", "DATABASE.md"),
        module_relative=False,
        verbose=False,
    )
    assert results.attempted > 0
    assert results.failed == 0


def test_link_checker_detects_breakage(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text(
        "# Title\n\n[ok](#title)\n[bad](#missing-anchor)\n"
        "[gone](no_such_file.md)\n",
        encoding="utf-8",
    )
    checker = _load_link_checker()
    broken = checker.check_file(str(bad))
    assert {reason.split(":")[0] for _, reason in broken} == {
        "no such heading anchor",
        "missing file",
    }
