"""The documentation is part of tier-1: links resolve, examples run.

CI has a dedicated ``docs`` job running the same two checks
(``tools/check_md_links.py`` and ``python -m doctest
docs/DATABASE.md``); these tests keep them enforced locally too.
"""

from __future__ import annotations

import doctest
import importlib.util
import os

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(__file__), os.pardir)
)


def _load_link_checker():
    spec = importlib.util.spec_from_file_location(
        "check_md_links",
        os.path.join(REPO_ROOT, "tools", "check_md_links.py"),
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_markdown_links_resolve(capsys):
    checker = _load_link_checker()
    broken = checker.main([])
    output = capsys.readouterr().out
    assert broken == 0, f"broken documentation links:\n{output}"
    # The default set must include the database reference.
    assert any("DATABASE.md" in f for f in checker.default_files())


def test_database_md_doctest():
    results = doctest.testfile(
        os.path.join(REPO_ROOT, "docs", "DATABASE.md"),
        module_relative=False,
        verbose=False,
    )
    assert results.attempted > 0
    assert results.failed == 0


def test_link_checker_detects_breakage(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text(
        "# Title\n\n[ok](#title)\n[bad](#missing-anchor)\n"
        "[gone](no_such_file.md)\n",
        encoding="utf-8",
    )
    checker = _load_link_checker()
    broken = checker.check_file(str(bad))
    assert {reason.split(":")[0] for _, reason in broken} == {
        "no such heading anchor",
        "missing file",
    }


def test_monitor_md_event_table_matches_event_types():
    """docs/MONITOR.md's journal reference must cover EVENT_TYPES exactly.

    A diff test, not a subset test: documenting a type that no longer
    exists is as wrong as shipping an undocumented one.
    """
    import re

    from repro.monitor.journal import EVENT_TYPES

    with open(
        os.path.join(REPO_ROOT, "docs", "MONITOR.md"), encoding="utf-8"
    ) as fh:
        text = fh.read()
    section = text.split("## Journal event reference", 1)[1]
    section = section.split("\n## ", 1)[0]
    documented = set(re.findall(r"^\| `([a-z_]+)` \|", section, re.M))
    assert documented == set(EVENT_TYPES), (
        f"docs/MONITOR.md event table out of sync: "
        f"undocumented={sorted(set(EVENT_TYPES) - documented)} "
        f"stale={sorted(documented - set(EVENT_TYPES))}"
    )


def test_monitor_md_slo_table_matches_defaults():
    """The SLO schema table's defaults must match FlowSLO's real ones."""
    from dataclasses import fields

    from repro.monitor.slo import FlowSLO

    with open(
        os.path.join(REPO_ROOT, "docs", "MONITOR.md"), encoding="utf-8"
    ) as fh:
        text = fh.read()
    for f in fields(FlowSLO):
        assert f"`{f.name}`" in text, f"FlowSLO.{f.name} missing from docs"


def test_storage_md_op_table_matches_wal_ops():
    """docs/STORAGE.md's op reference must cover WAL_OPS exactly.

    A diff test, not a subset test: documenting an op that no longer
    exists is as wrong as shipping an undocumented one.
    """
    import re

    from repro.docdb.wal import WAL_OPS

    with open(
        os.path.join(REPO_ROOT, "docs", "STORAGE.md"), encoding="utf-8"
    ) as fh:
        text = fh.read()
    section = text.split("### WAL operation reference", 1)[1]
    section = section.split("\n## ", 1)[0]
    documented = set(re.findall(r"^\| `([a-z_]+)` \|", section, re.M))
    assert documented == set(WAL_OPS), (
        f"docs/STORAGE.md op table out of sync: "
        f"undocumented={sorted(set(WAL_OPS) - documented)} "
        f"stale={sorted(documented - set(WAL_OPS))}"
    )


def test_storage_md_fsync_table_matches_policies():
    """The fsync trade-off table must cover FSYNC_POLICIES exactly."""
    import re

    from repro.docdb.wal import FSYNC_POLICIES

    with open(
        os.path.join(REPO_ROOT, "docs", "STORAGE.md"), encoding="utf-8"
    ) as fh:
        text = fh.read()
    section = text.split("### fsync policy trade-off", 1)[1]
    section = section.split("\n## ", 1)[0]
    documented = set(re.findall(r"^\| `([a-z]+)` \|", section, re.M))
    assert documented == set(FSYNC_POLICIES), (
        f"docs/STORAGE.md fsync table out of sync: "
        f"undocumented={sorted(set(FSYNC_POLICIES) - documented)} "
        f"stale={sorted(documented - set(FSYNC_POLICIES))}"
    )


def test_storage_md_example_is_consistent():
    """The quickstart snippet must name real API: open/checkpoint/close."""
    from repro.docdb.client import DocDBClient

    with open(
        os.path.join(REPO_ROOT, "docs", "STORAGE.md"), encoding="utf-8"
    ) as fh:
        text = fh.read()
    for attr in ("open", "checkpoint", "compaction_hook", "save_to", "load_from"):
        assert hasattr(DocDBClient, attr)
        assert attr in text, f"STORAGE.md never mentions DocDBClient.{attr}"


def test_architecture_md_net_counter_table_matches_metrics():
    """The fast-path counter table must cover the NET_* names exactly.

    A diff test, not a subset test: documenting a counter that no
    longer exists is as wrong as shipping an undocumented one.
    """
    import re

    from repro.suite.metrics import _NET_STAT_NAMES

    with open(
        os.path.join(REPO_ROOT, "docs", "ARCHITECTURE.md"), encoding="utf-8"
    ) as fh:
        text = fh.read()
    section = text.split("## Measurement fast path", 1)[1]
    section = section.split("\n## ", 1)[0]
    documented = set(re.findall(r"^\| `([a-z_]+)` \|", section, re.M))
    canonical = set(_NET_STAT_NAMES.values())
    assert documented == canonical, (
        f"docs/ARCHITECTURE.md net counter table out of sync: "
        f"undocumented={sorted(canonical - documented)} "
        f"stale={sorted(documented - canonical)}"
    )
