"""Tests for the measurement runner, storage batching and fault plans."""

import pytest

from repro.crypto.rsa import keypair_from_seed
from repro.docdb.auth import SIGNATURE_FIELD, SignedDocumentVerifier
from repro.docdb.client import DocDBClient
from repro.errors import DataLossError
from repro.netsim.network import ServerHealth
from repro.scion.snet import ScionHost
from repro.suite.cli import seed_servers
from repro.suite.collect import PathsCollector
from repro.suite.config import PATHS_COLLECTION, STATS_COLLECTION, SuiteConfig
from repro.suite.faults import DataLossFault, FaultPlan, ServerOutage
from repro.suite.runner import TestRunner
from repro.suite.storage import StatsRepository, stats_document_id


@pytest.fixture()
def env():
    client = DocDBClient()
    db = client["upin"]
    seed_servers(db)
    host = ScionHost.scionlab(seed=2)
    config = SuiteConfig(iterations=1, destination_ids=[3])
    PathsCollector(host, db, config).collect()
    return host, db, config


class TestStatsRepository:
    def test_batch_flush(self):
        client = DocDBClient()
        repo = StatsRepository(client["d"]["s"])
        for i in range(5):
            repo.add({"_id": f"3_{i}_1", "v": i})
        assert len(repo) == 5
        assert repo.flush() == 5
        assert len(repo) == 0
        assert client["d"]["s"].count_documents() == 5

    def test_flush_empty_is_zero(self):
        repo = StatsRepository(DocDBClient()["d"]["s"])
        assert repo.flush() == 0

    def test_data_loss_drops_whole_buffer(self):
        client = DocDBClient()

        def crash(batch):
            raise DataLossError("boom")

        repo = StatsRepository(client["d"]["s"], flush_hook=crash)
        repo.add({"_id": "x"})
        with pytest.raises(DataLossError):
            repo.flush()
        assert repo.lost_documents == 1
        assert client["d"]["s"].count_documents() == 0
        # Buffer was consumed; a retry flush stores nothing stale.
        assert repo.flush() == 0

    def test_lost_last_flush_tracks_per_batch_delta(self):
        client = DocDBClient()

        def crash(batch):
            raise DataLossError("boom")

        repo = StatsRepository(client["d"]["s"], flush_hook=crash)
        repo.add({"_id": "a"})
        with pytest.raises(DataLossError):
            repo.flush()
        repo.add({"_id": "b"})
        repo.add({"_id": "c"})
        with pytest.raises(DataLossError):
            repo.flush()
        assert repo.lost_last_flush == 2  # the delta, not the cumulative 3
        assert repo.lost_documents == 3
        # A clean (empty) flush resets the delta.
        assert repo.flush() == 0
        assert repo.lost_last_flush == 0

    def test_discard(self):
        repo = StatsRepository(DocDBClient()["d"]["s"])
        repo.add({"_id": "x"})
        assert repo.discard() == 1
        assert repo.flush() == 0

    def test_signing(self):
        kp = keypair_from_seed(3, bits=256)
        client = DocDBClient()
        coll = client["d"]["s"]
        verifier = SignedDocumentVerifier()
        verifier.register_writer("17-ffaa:1:e01", kp.public)
        coll.validator = verifier
        repo = StatsRepository(coll, signer=kp, signer_subject="17-ffaa:1:e01")
        repo.add({"_id": "3_0_1", "lat": 20.0})
        assert repo.flush() == 1
        stored = coll.find_one({"_id": "3_0_1"})
        assert SIGNATURE_FIELD in stored

    def test_document_id_scheme(self):
        assert stats_document_id("2_15", 123456) == "2_15_123456"


class TestRunnerHappyPath:
    def test_one_iteration_stores_one_doc_per_path(self, env):
        host, db, config = env
        report = TestRunner(host, db, config).run()
        n_paths = db[PATHS_COLLECTION].count_documents()
        assert report.paths_tested == n_paths
        assert report.stats_stored == n_paths
        assert report.measurement_errors == 0
        assert db[STATS_COLLECTION].count_documents() == n_paths

    def test_document_schema_matches_fig3(self, env):
        host, db, config = env
        TestRunner(host, db, config).run()
        doc = db[STATS_COLLECTION].find_one({"server_id": 3})
        assert doc["_id"].startswith(doc["path_id"] + "_")
        for field in (
            "avg_latency_ms", "min_latency_ms", "max_latency_ms",
            "mdev_latency_ms", "loss_pct", "bw_up_small_mbps",
            "bw_down_small_mbps", "bw_up_mtu_mbps", "bw_down_mtu_mbps",
            "isds", "hop_count", "timestamp_ms", "target_mbps",
        ):
            assert field in doc, field
        assert doc["target_mbps"] == pytest.approx(12.0)

    def test_multiple_iterations_multiply_samples(self, env):
        host, db, config = env
        from dataclasses import replace

        runner = TestRunner(host, db, replace(config, iterations=3))
        report = runner.run()
        n_paths = db[PATHS_COLLECTION].count_documents()
        assert report.stats_stored == 3 * n_paths
        assert report.iterations == 3

    def test_sim_time_advances_15s_per_path(self, env):
        host, db, config = env
        report = TestRunner(host, db, config).run()
        n_paths = db[PATHS_COLLECTION].count_documents()
        assert report.sim_seconds == pytest.approx(15.0 * n_paths)

    def test_timestamps_unique_and_increasing(self, env):
        host, db, config = env
        from dataclasses import replace

        TestRunner(host, db, replace(config, iterations=2)).run()
        stamps = [d["timestamp_ms"] for d in db[STATS_COLLECTION].find(sort=[("timestamp_ms", 1)])]
        assert len(set(stamps)) == len(stamps)


class TestRunnerFaultTolerance:
    def test_server_outage_skips_but_does_not_crash(self, env):
        host, db, config = env
        from dataclasses import replace

        plan = FaultPlan(outages=[ServerOutage(3, 0, 1, ServerHealth.DOWN)])
        runner = TestRunner(host, db, replace(config, iterations=2, max_retries=0),
                            faults=plan)
        report = runner.run()
        n_paths = db[PATHS_COLLECTION].count_documents()
        # Iteration 0 fails on the bwtest (server down); iteration 1 works.
        assert report.measurement_errors == n_paths
        assert report.stats_stored == n_paths
        assert plan.injected_outages >= 1

    def test_error_response_also_tolerated(self, env):
        host, db, config = env
        from dataclasses import replace

        plan = FaultPlan(outages=[ServerOutage(3, 0, 1, ServerHealth.ERROR)])
        report = TestRunner(
            host, db, replace(config, iterations=1, max_retries=0), faults=plan
        ).run()
        assert report.stats_stored == 0
        assert report.measurement_errors == db[PATHS_COLLECTION].count_documents()

    def test_data_loss_bounded_to_one_destination(self, env):
        host, db, config = env
        from dataclasses import replace

        plan = FaultPlan(data_loss=DataLossFault(probability=1.0))
        report = TestRunner(host, db, replace(config, iterations=2), faults=plan).run()
        assert report.stats_stored == 0
        assert report.stats_lost > 0
        assert plan.injected_losses == 2  # one per (iteration, destination)

    def test_two_flush_crashes_do_not_double_count_losses(self, env):
        """Regression: ``stats_lost`` once re-added the repository's
        *cumulative* loss counter on every crash, so a second lost batch
        inflated the total by the first batch again."""
        host, db, config = env
        from dataclasses import replace

        plan = FaultPlan(data_loss=DataLossFault(probability=1.0))
        runner = TestRunner(host, db, replace(config, iterations=2), faults=plan)
        report = runner.run()
        n_paths = db[PATHS_COLLECTION].count_documents()
        assert plan.injected_losses == 2  # two crashed flushes...
        assert report.stats_lost == 2 * n_paths  # ...each counted once
        # The cumulative repository counter agrees with the report.
        assert runner.stats.lost_documents == report.stats_lost

    def test_outage_window_definition(self):
        outage = ServerOutage(1, 2, 4)
        assert not outage.active(1)
        assert outage.active(2) and outage.active(3)
        assert not outage.active(4)

    def test_outage_validation(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            ServerOutage(1, 3, 3)
        with pytest.raises(ValidationError):
            DataLossFault(probability=1.5)

    def test_campaign_survives_mixed_faults(self, env):
        """§4.1.2: continuous measurements require continuous functioning."""
        host, db, config = env
        from dataclasses import replace

        plan = FaultPlan(
            outages=[ServerOutage(3, 1, 2, ServerHealth.DOWN)],
            data_loss=DataLossFault(probability=0.3, seed=7),
        )
        report = TestRunner(
            host, db, replace(config, iterations=4, max_retries=0), faults=plan
        ).run()
        # Campaign always completes all iterations.
        assert report.iterations == 4
        assert report.stats_stored > 0


class TestRunnerSigning:
    def test_signed_campaign_end_to_end(self, env):
        host, db, config = env
        kp = keypair_from_seed(9, bits=256)
        verifier = SignedDocumentVerifier()
        verifier.register_writer("17-ffaa:1:e01", kp.public)
        db[STATS_COLLECTION].validator = verifier
        runner = TestRunner(
            host, db, config, signer=kp, signer_subject="17-ffaa:1:e01"
        )
        report = runner.run()
        assert report.stats_stored > 0
        doc = db[STATS_COLLECTION].find_one()
        verifier(doc)  # signature survives storage
