"""Tests for update operators (repro.docdb.update)."""

import pytest

from repro.docdb.update import apply_update, is_update_document
from repro.errors import QueryError

BASE = {"_id": 1, "a": 1, "nested": {"x": 10}, "arr": [1, 2], "tags": ["red"]}


class TestReplacement:
    def test_detects_update_documents(self):
        assert is_update_document({"$set": {"a": 1}})
        assert not is_update_document({"a": 1})

    def test_replacement_keeps_id(self):
        out = apply_update(BASE, {"b": 5})
        assert out == {"_id": 1, "b": 5}

    def test_original_untouched(self):
        apply_update(BASE, {"$set": {"a": 99}})
        assert BASE["a"] == 1


class TestSetUnsetRename:
    def test_set(self):
        assert apply_update(BASE, {"$set": {"a": 2}})["a"] == 2

    def test_set_nested_creates(self):
        out = apply_update(BASE, {"$set": {"deep.new.field": 1}})
        assert out["deep"]["new"]["field"] == 1

    def test_unset(self):
        out = apply_update(BASE, {"$unset": {"a": ""}})
        assert "a" not in out

    def test_rename(self):
        out = apply_update(BASE, {"$rename": {"a": "alpha"}})
        assert "a" not in out and out["alpha"] == 1

    def test_rename_missing_noop(self):
        out = apply_update(BASE, {"$rename": {"zzz": "y"}})
        assert "y" not in out

    def test_cannot_modify_id(self):
        with pytest.raises(QueryError):
            apply_update(BASE, {"$set": {"_id": 9}})

    def test_current_date_uses_logical_time(self):
        out = apply_update(BASE, {"$currentDate": {"stamp": True}}, now_ms=123)
        assert out["stamp"] == 123


class TestNumericOps:
    def test_inc(self):
        assert apply_update(BASE, {"$inc": {"a": 5}})["a"] == 6

    def test_inc_negative(self):
        assert apply_update(BASE, {"$inc": {"a": -1}})["a"] == 0

    def test_inc_missing_starts_at_zero(self):
        assert apply_update(BASE, {"$inc": {"counter": 3}})["counter"] == 3

    def test_inc_non_numeric_operand_rejected(self):
        with pytest.raises(QueryError):
            apply_update(BASE, {"$inc": {"a": "x"}})

    def test_inc_non_numeric_target_rejected(self):
        with pytest.raises(QueryError):
            apply_update(BASE, {"$inc": {"tags": 1}})

    def test_mul(self):
        assert apply_update(BASE, {"$mul": {"a": 4}})["a"] == 4

    def test_mul_missing_is_zero(self):
        assert apply_update(BASE, {"$mul": {"counter": 4}})["counter"] == 0

    def test_min_max(self):
        assert apply_update(BASE, {"$min": {"a": 0}})["a"] == 0
        assert apply_update(BASE, {"$min": {"a": 5}})["a"] == 1
        assert apply_update(BASE, {"$max": {"a": 5}})["a"] == 5
        assert apply_update(BASE, {"$max": {"a": 0}})["a"] == 1

    def test_min_missing_sets(self):
        assert apply_update(BASE, {"$min": {"new": 7}})["new"] == 7


class TestArrayOps:
    def test_push(self):
        assert apply_update(BASE, {"$push": {"arr": 3}})["arr"] == [1, 2, 3]

    def test_push_each(self):
        out = apply_update(BASE, {"$push": {"arr": {"$each": [3, 4]}}})
        assert out["arr"] == [1, 2, 3, 4]

    def test_push_creates_array(self):
        assert apply_update(BASE, {"$push": {"new": 1}})["new"] == [1]

    def test_push_to_scalar_rejected(self):
        with pytest.raises(QueryError):
            apply_update(BASE, {"$push": {"a": 1}})

    def test_add_to_set_dedupes(self):
        out = apply_update(BASE, {"$addToSet": {"tags": "red"}})
        assert out["tags"] == ["red"]
        out = apply_update(BASE, {"$addToSet": {"tags": "blue"}})
        assert out["tags"] == ["red", "blue"]

    def test_pull_value(self):
        assert apply_update(BASE, {"$pull": {"arr": 1}})["arr"] == [2]

    def test_pull_with_condition(self):
        out = apply_update(BASE, {"$pull": {"arr": {"$gte": 2}}})
        assert out["arr"] == [1]

    def test_pull_missing_noop(self):
        assert "zzz" not in apply_update(BASE, {"$pull": {"zzz": 1}})

    def test_pop_last_and_first(self):
        assert apply_update(BASE, {"$pop": {"arr": 1}})["arr"] == [1]
        assert apply_update(BASE, {"$pop": {"arr": -1}})["arr"] == [2]

    def test_pop_bad_operand(self):
        with pytest.raises(QueryError):
            apply_update(BASE, {"$pop": {"arr": 2}})


class TestValidation:
    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            apply_update(BASE, {"$explode": {"a": 1}})

    def test_operator_needs_document(self):
        with pytest.raises(QueryError):
            apply_update(BASE, {"$set": 5})

    def test_multiple_operators_compose(self):
        out = apply_update(
            BASE, {"$set": {"b": 1}, "$inc": {"a": 1}, "$push": {"arr": 9}}
        )
        assert out["b"] == 1 and out["a"] == 2 and out["arr"] == [1, 2, 9]
