"""Tests for the selection ablation experiment and the UPIN front-end CLI."""

import pytest

from repro.experiments import ablation_selection
from repro.selection.engine import PathSelector
from repro.selection.request import Metric, UserRequest
from repro.upin.cli import build_parser, main


class TestSelectionAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_selection.run(rounds=6, seed=20231112)

    def test_default_strategy_dies_during_congestion(self, result):
        assert result.disturbed_delivery_rate("default") < 0.05

    def test_upin_strategy_routes_around(self, result):
        assert result.disturbed_delivery_rate("upin") > 0.9

    def test_upin_wins_overall(self, result):
        assert result.delivery_rate("upin") > result.delivery_rate("default") + 0.3

    def test_default_never_switches(self, result):
        assert result.switches("default") == 0

    def test_upin_switches_at_least_once(self, result):
        assert result.switches("upin") >= 1

    def test_upin_avoids_disturbed_as_while_congested(self, result):
        disturbed_picks = {
            o.path_id
            for o in result.outcomes
            if o.strategy == "upin" and o.disturbed and o.round_index > 2
        }
        # After the first congested round the selection sees the losses
        # and must not pick the default path again.
        assert "1_0" not in disturbed_picks

    def test_format_text(self, result):
        text = result.format_text()
        assert "overall delivery" in text
        assert "during congestion" in text


class TestSinceMsSelection:
    def test_recent_window_changes_the_answer(self, measured_world):
        """Restricting to samples after the last round must still work
        and agree with the full-history ranking in a calm campaign."""
        selector = PathSelector(measured_world.db, measured_world.host.topology)
        full = selector.select(UserRequest.make(1, Metric.LATENCY))
        docs = measured_world.db["paths_stats"].find(
            {"server_id": 1}, sort=[("timestamp_ms", -1)]
        )
        cutoff = docs[len(docs) // 2]["timestamp_ms"]
        recent = selector.select(
            UserRequest.make(1, Metric.LATENCY), since_ms=cutoff
        )
        assert recent.best is not None
        assert all(
            r.aggregate.samples <= full.best.aggregate.samples
            for r in recent.ranked
        )

    def test_future_cutoff_raises_no_path(self, measured_world):
        from repro.errors import NoPathError

        selector = PathSelector(measured_world.db, measured_world.host.topology)
        with pytest.raises(NoPathError):
            selector.select(UserRequest.make(1), since_ms=10**15)


class TestUpinFrontendCli:
    def test_parser_subcommands(self):
        args = build_parser().parse_args(
            ["intent", "1", "--metric", "jitter", "--exclude-country", "US"]
        )
        assert args.server_id == 1
        assert args.metric == "jitter"
        assert args.exclude_country == ["US"]

    def test_describe(self, capsys):
        assert main(["describe"]) == 0
        assert "36 ASes" in capsys.readouterr().out

    def test_nodes_by_country(self, capsys):
        assert main(["nodes", "--country", "IE"]) == 0
        out = capsys.readouterr().out
        assert "16-ffaa:0:1002" in out and "Amazon" in out

    def test_nodes_by_operator(self, capsys):
        assert main(["nodes", "--operator", "KISTI"]) == 0
        assert "20-ffaa:0:1401" in capsys.readouterr().out

    def test_recommend(self, capsys):
        assert main(["--iterations", "2", "recommend", "3"]) == 0
        out = capsys.readouterr().out
        assert "latency:" in out and "3_" in out

    def test_intent_with_exclusions(self, capsys):
        assert (
            main(
                ["--iterations", "2", "intent", "1",
                 "--exclude-country", "US", "SG"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "selected path" in out
        assert "verdict:" in out

    def test_unsatisfiable_intent_errors(self, capsys):
        assert (
            main(["--iterations", "1", "intent", "1", "--exclude-isd", "16"]) == 1
        )
        assert "error:" in capsys.readouterr().err


class TestWhatIfCli:
    def test_whatif_policy_table(self, capsys):
        assert main(["whatif", "--exclude-country", "US", "SG"]) == 0
        out = capsys.readouterr().out
        assert "reachable destinations: 14/21" in out
        assert "16-ffaa:0:1003" in out  # N. Virginia lost

    def test_whatif_empty_policy(self, capsys):
        assert main(["whatif"]) == 0
        assert "reachable destinations: 21/21" in capsys.readouterr().out
