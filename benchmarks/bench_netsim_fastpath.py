"""Fast-path bench: vectorized batch probing vs the per-packet walker.

Two measurements, written to ``benchmarks/output/netsim_fastpath.txt``:

1. **Microbenchmark** — one echo series per call over chain paths of
   1/3/7 links (2/4/8 ASes): packets/second through
   :meth:`~repro.netsim.network.NetworkSim.probe_roundtrip` (scalar)
   versus :meth:`~repro.netsim.network.NetworkSim.probe_batch`.
2. **Campaign** — the seeded §6 study campaign end to end with
   ``scalar_fallback=True`` versus the batch default.

``tools/check_fastpath_speedup.py`` parses the table and fails CI when
the batch engine stops paying for itself (<10x micro, <3x campaign).
Run standalone with ``--smoke`` for a scaled-down version of the same
table (fewer probes, one campaign iteration).
"""

from __future__ import annotations

import argparse
import time
from typing import List, Sequence, Tuple

from benchmarks.conftest import BENCH_SEED, write_figure
from repro.docdb.client import DocDBClient
from repro.netsim.config import NetworkConfig
from repro.netsim.network import LinkTraversal, NetworkSim
from repro.netsim.packet import PacketSpec
from repro.scion.snet import ScionHost
from repro.scionlab.defaults import study_destination_ids
from repro.suite.cli import seed_servers
from repro.suite.collect import PathsCollector
from repro.suite.config import SuiteConfig
from repro.suite.runner import TestRunner
from repro.topology.builder import TopologyBuilder
from repro.topology.entities import ASRole
from repro.topology.isd_as import ISDAS
from repro.topology.scionlab import (
    MY_AS,
    build_scionlab_world,
    scionlab_network_config,
)

OUTPUT_NAME = "netsim_fastpath.txt"
CHAIN_LINKS = (1, 3, 7)  # 2-, 4- and 8-AS paths
FULL_PROBES = 3000
SMOKE_PROBES = 400


def _chain_world(n_links: int):
    """A provider chain: one core AS with ``n_links`` descendants."""
    b = TopologyBuilder()
    b.add_as("1-ffaa:0:1", "chain0", role=ASRole.CORE, lat=47.4, lon=8.5,
             country="CH", operator="Op", ip="10.0.0.1")
    for i in range(1, n_links + 1):
        b.add_as(f"1-ffaa:0:{i + 1}", f"chain{i}", role=ASRole.NON_CORE,
                 lat=47.4 + 0.3 * i, lon=8.5 + 0.3 * i, country="CH",
                 operator="Op", ip=f"10.0.0.{i + 1}")
        b.parent_link(f"1-ffaa:0:{i}", f"1-ffaa:0:{i + 1}")
    return b.build()


def _chain_traversals(topology, n_links: int) -> List[LinkTraversal]:
    steps = []
    for i in range(1, n_links + 1):
        link = topology.link_between(f"1-ffaa:0:{i}", f"1-ffaa:0:{i + 1}")[0]
        steps.append(LinkTraversal(link=link, sender=ISDAS.parse(f"1-ffaa:0:{i}")))
    return steps


def _micro_row(n_links: int, probes: int) -> Tuple[float, float, float]:
    """(scalar pkt/s, batch pkt/s, speedup) for one chain length.

    Each mode gets its own seeded network so stream state is identical;
    only engine overhead differs.
    """
    topology = _chain_world(n_links)
    packet = PacketSpec(payload_bytes=16, n_hops=n_links + 1, n_segments=2)

    net = NetworkSim(topology, NetworkConfig(seed=BENCH_SEED))
    steps = _chain_traversals(topology, n_links)
    start = time.perf_counter()
    for i in range(probes):
        net.probe_roundtrip(steps, packet, t_s=i * 0.1)
    scalar_s = time.perf_counter() - start

    net = NetworkSim(topology, NetworkConfig(seed=BENCH_SEED))
    steps = _chain_traversals(topology, n_links)
    start = time.perf_counter()
    series = net.probe_batch(steps, packet, probes, 0.1, 0.0)
    batch_s = time.perf_counter() - start
    assert series.count == probes

    return probes / scalar_s, probes / batch_s, scalar_s / batch_s


#: Campaign timings are best-of-N: single cold runs on a shared machine
#: jitter by 30%+, which would make the CI speedup gate flaky.
CAMPAIGN_REPEATS = 3


def _one_campaign_run(*, scalar_fallback: bool, iterations: int) -> float:
    client = DocDBClient()
    db = client["upin"]
    seed_servers(db)
    net_config = scionlab_network_config(seed=BENCH_SEED)
    net_config.scalar_fallback = scalar_fallback
    host = ScionHost(build_scionlab_world(), MY_AS, config=net_config)
    config = SuiteConfig(
        iterations=iterations, destination_ids=study_destination_ids()
    )
    PathsCollector(host, db, config).collect()
    start = time.perf_counter()
    report = TestRunner(host, db, config).run()
    elapsed = time.perf_counter() - start
    assert report.paths_tested == 80 * iterations
    return elapsed


def _campaign_seconds(*, scalar_fallback: bool, iterations: int) -> float:
    """Best of :data:`CAMPAIGN_REPEATS` end-to-end campaign timings."""
    return min(
        _one_campaign_run(scalar_fallback=scalar_fallback, iterations=iterations)
        for _ in range(CAMPAIGN_REPEATS)
    )


def _campaign_pair(iterations: int) -> Tuple[float, float]:
    """(scalar_s, batch_s), repeats interleaved scalar/batch/scalar/batch.

    Interleaving means background load on a shared CI machine drifts
    into both modes' samples equally instead of skewing whichever mode
    happened to run during the noisy stretch; the min of each side is
    then a fair same-conditions comparison.
    """
    scalar_ts, batch_ts = [], []
    for _ in range(CAMPAIGN_REPEATS):
        scalar_ts.append(
            _one_campaign_run(scalar_fallback=True, iterations=iterations)
        )
        batch_ts.append(
            _one_campaign_run(scalar_fallback=False, iterations=iterations)
        )
    return min(scalar_ts), min(batch_ts)


def run_fastpath_table(*, probes: int, iterations: int) -> str:
    lines = [
        "netsim fast path: vectorized batch probing vs per-packet walker",
        "",
        f"  microbenchmark: one echo series per call ({probes} probes)",
        f"  {'links':>5}  {'ases':>4}  {'scalar pkt/s':>12}  "
        f"{'batch pkt/s':>12}  {'speedup':>8}",
    ]
    for n_links in CHAIN_LINKS:
        scalar_pps, batch_pps, ratio = _micro_row(n_links, probes)
        lines.append(
            f"  {n_links:>5}  {n_links + 1:>4}  {scalar_pps:>12.0f}  "
            f"{batch_pps:>12.0f}  {ratio:>7.1f}x"
        )

    scalar_s, batch_s = _campaign_pair(iterations)
    lines += [
        "",
        f"  study campaign end to end (5 destinations x {iterations} "
        f"iteration(s), 80 paths/iteration)",
        f"  scalar_fallback=True : {scalar_s:>7.2f} s",
        f"  batch (default)      : {batch_s:>7.2f} s",
        f"  campaign speedup: {scalar_s / batch_s:.1f}x",
    ]
    return "\n".join(lines)


def test_fastpath_speedup_table():
    """Regenerate the committed table (full-size probe counts)."""
    text = run_fastpath_table(probes=FULL_PROBES, iterations=1)
    write_figure(OUTPUT_NAME, text)
    # The hard gates live in tools/check_fastpath_speedup.py (CI); keep
    # a soft floor here so local bench runs flag regressions too.
    from tools.check_fastpath_speedup import parse_speedups

    micro, campaign = parse_speedups(text)
    assert min(micro) >= 10.0
    assert campaign >= 3.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="scaled-down run (fewer probes, 1 campaign iteration)",
    )
    args = parser.parse_args()
    probes = SMOKE_PROBES if args.smoke else FULL_PROBES
    text = run_fastpath_table(probes=probes, iterations=1)
    write_figure(OUTPUT_NAME, text)
    print(text)


if __name__ == "__main__":
    main()
