"""Bench + regeneration of Figure 9 (packet loss per N. Virginia path)."""

from benchmarks.conftest import BENCH_SEED, write_figure
from repro.experiments import fig9


def test_fig9_loss_cluster(benchmark):
    result = benchmark.pedantic(
        lambda: fig9.run(iterations=3, seed=BENCH_SEED), rounds=1, iterations=1
    )

    # Paper shape: exactly the cluster 2_16-2_19, 2_22, 2_23 at 100 %
    # loss (2_20/2_21 survive), majority of other paths near 0 %, and
    # the failing cluster sharing a first-half node.
    assert result.total_loss_paths == fig9.PAPER_FAILING_PATHS
    healthy = [s for s in result.series if not s.always_total_loss]
    assert sum(1 for s in healthy if s.mean_loss_pct < 5.0) >= 0.8 * len(healthy)
    assert fig9.CONGESTED_AS in result.shared_nodes

    write_figure("fig9.txt", result.format_text())
