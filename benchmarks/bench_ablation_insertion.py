"""Ablation of the §4.2.2 design choice: batched vs per-measurement inserts.

"There is a trade-off between fault tolerance and scalability in terms
of insertions. ... saving one measurement at [a] time decreases
performances dramatically"; the paper batches per destination.  This
bench quantifies both sides: insert throughput, and the bounded loss a
mid-campaign crash causes under each strategy.
"""

import pytest

from repro.docdb.client import DocDBClient
from repro.suite.storage import StatsRepository

N_DOCS = 2000
BATCH = 25  # one destination's worth of path samples


def _documents():
    return [
        {"_id": f"2_{i % BATCH}_{i}", "path_id": f"2_{i % BATCH}",
         "server_id": 2, "avg_latency_ms": 40.0 + i % 7, "loss_pct": 0.0}
        for i in range(N_DOCS)
    ]


def test_insert_one_per_measurement(benchmark):
    docs = _documents()

    def run():
        coll = DocDBClient()["upin"]["paths_stats"]
        coll.create_index("path_id")
        for doc in docs:
            coll.insert_one(doc)
        return coll

    coll = benchmark(run)
    assert len(coll) == N_DOCS


def test_insert_batched_per_destination(benchmark):
    docs = _documents()

    def run():
        coll = DocDBClient()["upin"]["paths_stats"]
        coll.create_index("path_id")
        repo = StatsRepository(coll)
        for i, doc in enumerate(docs):
            repo.add(doc)
            if (i + 1) % BATCH == 0:
                repo.flush()
        repo.flush()
        return coll

    coll = benchmark(run)
    assert len(coll) == N_DOCS


def test_crash_loss_is_bounded_by_batch():
    """The fault-tolerance half of the trade-off (not a timing bench):
    a crash right before a flush loses at most one destination's batch —
    one sample per path, 'without unbalancing the number of samples'."""
    coll = DocDBClient()["upin"]["paths_stats"]
    repo = StatsRepository(coll)
    docs = _documents()
    crash_at = 10 * BATCH + 7  # mid-buffer
    for i, doc in enumerate(docs[:crash_at]):
        repo.add(doc)
        if (i + 1) % BATCH == 0:
            repo.flush()
    lost = repo.discard()  # the crash
    assert lost == crash_at % BATCH
    assert len(coll) == crash_at - lost
    # Sample balance: every path lost at most one sample.
    per_path = {}
    for doc in coll.find():
        per_path[doc["path_id"]] = per_path.get(doc["path_id"], 0) + 1
    assert max(per_path.values()) - min(per_path.values()) <= 1
