"""Bench of the §6 study campaign: 5 destinations, sequential vs parallel.

The paper gathered ~3000 samples over 5 destinations; this bench runs a
scaled-down version of the same campaign and checks its bookkeeping.
"""

import pytest

from benchmarks.conftest import BENCH_SEED, write_figure
from repro.docdb.client import DocDBClient
from repro.scion.snet import ScionHost
from repro.scionlab.defaults import study_destination_ids
from repro.suite.cli import seed_servers
from repro.suite.collect import PathsCollector
from repro.suite.config import STATS_COLLECTION, SuiteConfig
from repro.suite.parallel import ParallelCampaign
from repro.suite.runner import TestRunner
from repro.topology.scionlab import MY_AS, scionlab_network_config


def _study_env(iterations: int):
    client = DocDBClient()
    db = client["upin"]
    seed_servers(db)
    host = ScionHost.scionlab(seed=BENCH_SEED)
    config = SuiteConfig(
        iterations=iterations, destination_ids=study_destination_ids()
    )
    PathsCollector(host, db, config).collect()
    return host, db, config


def test_study_campaign_sequential(benchmark):
    def run():
        host, db, config = _study_env(iterations=1)
        report = TestRunner(host, db, config).run()
        return db, report

    db, report = benchmark.pedantic(run, rounds=1, iterations=1)
    # 5 study destinations: Ireland 22 + N.Virginia 32 + Magdeburg 6 +
    # Singapore 18 + KAIST 2 = 80 paths per iteration.
    assert report.paths_tested == 80
    assert report.stats_stored == 80
    assert db[STATS_COLLECTION].count_documents() == 80
    write_figure(
        "campaign.txt",
        f"study campaign: {report.stats_stored} samples, "
        f"{report.sim_seconds:.0f} simulated seconds, "
        f"{report.measurement_errors} errors",
    )


def test_study_campaign_parallel(benchmark):
    def run():
        host, db, config = _study_env(iterations=1)
        campaign = ParallelCampaign(
            host.topology, MY_AS, db, config,
            base_config=scionlab_network_config(seed=BENCH_SEED),
            seed=BENCH_SEED,
        )
        return campaign.run(iterations=1, max_workers=5)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.stats_stored == 80
    assert report.measurement_errors == 0
