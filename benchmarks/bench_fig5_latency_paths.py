"""Bench + regeneration of Figure 5 (per-path latency to AWS Ireland)."""

from benchmarks.conftest import write_figure
from repro.experiments import fig5


def test_fig5_latency_per_path(benchmark, ireland_world):
    result = benchmark(lambda: fig5.run(world=ireland_world))

    # Paper shape: 6- and 7-hop groups, three latency layers, the
    # detour paths (Ohio / Singapore) forming the upper two layers.
    assert {s.hop_count for s in result.series} == {6, 7}
    layers = result.layers()
    assert len(layers) == 3
    means = result.layer_means()
    assert means[0] < means[1] < means[2]
    assert any(result.detour_of(s) == "via Ohio" for s in result.series)
    assert any(result.detour_of(s) == "via Singapore" for s in result.series)

    write_figure("fig5.txt", result.format_text())
