"""WAL durability bench: fsync-policy throughput and recovery time.

Two questions the storage engine's knobs raise (docs/STORAGE.md):

1. **What does durability cost?**  The same campaign-shaped write load
   (batched ``insert_many``, one WAL record per §4.2.2 batch) is run
   against a volatile client and against durable clients under each
   fsync policy (``always`` / ``batch`` / ``never``).
2. **What does recovery cost?**  Un-checkpointed WALs of increasing
   length are recovered from scratch; replay time should grow roughly
   linearly with the record count, and a checkpoint should collapse it
   to near-zero.

Writes the table under ``benchmarks/output/wal_durability.txt``.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from typing import Any, Dict, List

from benchmarks.conftest import write_figure
from repro.docdb.client import DocDBClient

BATCH = 25  # one destination's worth of path samples (§4.2.2)
N_BATCHES = 120
RECOVERY_SIZES = (60, 240, 960)  # batches in the un-checkpointed WAL


def _batches(n_batches: int) -> List[List[Dict[str, Any]]]:
    doc = 0
    out = []
    for b in range(n_batches):
        batch = []
        for _ in range(BATCH):
            batch.append(
                {
                    "_id": f"s{doc}",
                    "path_id": f"p{doc % 40}",
                    "server_id": b % 10,
                    "avg_latency_ms": 40.0 + doc % 13,
                    "loss_pct": 0.0,
                }
            )
            doc += 1
        out.append(batch)
    return out


def _write_load(client: DocDBClient, batches: List[List[Dict[str, Any]]]) -> float:
    coll = client["upin"]["paths_stats"]
    start = time.perf_counter()
    for batch in batches:
        coll.insert_many(batch)
    return time.perf_counter() - start


def _timed_open(base: str) -> float:
    start = time.perf_counter()
    client = DocDBClient.open(base)
    elapsed = time.perf_counter() - start
    client.close()
    return elapsed


def test_fsync_policy_throughput_and_recovery():
    batches = _batches(N_BATCHES)
    n_docs = N_BATCHES * BATCH
    lines = [
        f"WAL durability trade-off ({N_BATCHES} batches x {BATCH} docs, "
        f"one WAL record per batch)",
        "",
        "  write throughput by persistence mode",
        f"  {'mode':<16}{'time':>10}  {'docs/s':>10}  {'fsyncs':>7}",
    ]

    volatile = DocDBClient()
    t_volatile = _write_load(volatile, batches)
    lines.append(
        f"  {'volatile':<16}{t_volatile * 1e3:>8.1f}ms"
        f"  {n_docs / t_volatile:>10.0f}  {'-':>7}"
    )

    results: Dict[str, float] = {}
    for policy in ("never", "batch", "always"):
        base = tempfile.mkdtemp(prefix=f"wal-bench-{policy}-")
        try:
            client = DocDBClient.open(base, fsync=policy)
            elapsed = _write_load(client, batches)
            fsyncs = client.wal_stats()["fsyncs"]
            client.close()
            results[policy] = elapsed
            lines.append(
                f"  {'wal/' + policy:<16}{elapsed * 1e3:>8.1f}ms"
                f"  {n_docs / elapsed:>10.0f}  {fsyncs:>7}"
            )
        finally:
            shutil.rmtree(base, ignore_errors=True)

    # `always` pays one fsync per record; it cannot beat `never`.
    assert results["always"] >= results["never"]

    lines += ["", "  recovery time vs un-checkpointed WAL size",
              f"  {'records':>9}  {'wal bytes':>10}  {'recovery':>10}  {'replayed':>9}"]
    for n in RECOVERY_SIZES:
        base = tempfile.mkdtemp(prefix="wal-bench-recover-")
        try:
            client = DocDBClient.open(base, fsync="never")
            _write_load(client, _batches(n))
            client.close()
            wal_bytes = sum(
                os.path.getsize(os.path.join(base, "wal", f))
                for f in os.listdir(os.path.join(base, "wal"))
            )
            elapsed = _timed_open(base)
            check = DocDBClient.open(base)
            replayed = check.recovery_report.records_replayed
            assert replayed == n
            assert len(check["upin"]["paths_stats"]) == n * BATCH
            check.close()
            lines.append(
                f"  {n:>9}  {wal_bytes:>10}  {elapsed * 1e3:>8.1f}ms  {replayed:>9}"
            )
        finally:
            shutil.rmtree(base, ignore_errors=True)

    # A checkpoint collapses replay to zero records.
    base = tempfile.mkdtemp(prefix="wal-bench-checkpoint-")
    try:
        client = DocDBClient.open(base, fsync="never")
        _write_load(client, _batches(RECOVERY_SIZES[-1]))
        client.checkpoint()
        client.close()
        elapsed = _timed_open(base)
        check = DocDBClient.open(base)
        assert check.recovery_report.records_replayed == 0
        assert len(check["upin"]["paths_stats"]) == RECOVERY_SIZES[-1] * BATCH
        check.close()
        lines.append(
            f"  {'(ckpt)':>9}  {'-':>10}  {elapsed * 1e3:>8.1f}ms  {0:>9}"
        )
        lines.append(
            "  (ckpt) = same workload after a checkpoint: recovery is a"
        )
        lines.append(
            "  snapshot load, zero WAL records replayed, segments GC'd"
        )
    finally:
        shutil.rmtree(base, ignore_errors=True)

    write_figure("wal_durability.txt", "\n".join(lines))
