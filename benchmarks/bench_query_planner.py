"""Query-planner bench: the best-path hot path, three ways.

The selection engine's dominant query is

    find({"server_id": S, "timestamp_ms": {"$gte": T}})

over ``paths_stats`` — an equality on the leading field plus a range on
the trailing field of the compound index the runner creates
(``server_id_1_timestamp_ms_1``, see ``repro.suite.runner``).  This
bench builds a 30-iteration campaign-shaped database and times that
query under the three regimes the planner stack provides:

1. **COLLSCAN** — no usable index: every document is examined.
2. **IXSCAN** — the compound index narrows to one destination's most
   recent batch before the residual filter runs.
3. **cached** — the epoch-keyed query cache answers a repeat of the
   exact same query without touching documents at all.

Asserts the ISSUE's floors (indexed >= 5x scan, cached >= 20x scan)
and writes the latency table under ``benchmarks/output/``.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, List

from benchmarks.conftest import BENCH_SEED, write_figure
from repro.docdb.collection import Collection
from repro.suite.storage import stats_document_id

ITERATIONS = 30
DESTINATIONS = 10
PATHS_PER_DESTINATION = 40
BASE_MS = 1_700_000_000_000
STEP_MS = 1_000


def _campaign_documents() -> List[List[Dict[str, Any]]]:
    """Synthesize per-destination ``paths_stats`` batches (runner-shaped).

    One inner list per (iteration, destination) — the granularity at
    which :class:`~repro.suite.storage.StatsRepository` batch-inserts,
    so replaying them through ``insert_many`` reproduces the campaign's
    write/epoch pattern exactly.
    """
    rng = random.Random(BENCH_SEED)
    batches: List[List[Dict[str, Any]]] = []
    tick = 0
    for iteration in range(ITERATIONS):
        for server_id in range(1, DESTINATIONS + 1):
            batch = []
            for path_index in range(PATHS_PER_DESTINATION):
                path_id = f"dst{server_id}_p{path_index}"
                timestamp = BASE_MS + tick * STEP_MS
                tick += 1
                latency = rng.uniform(8.0, 120.0)
                batch.append(
                    {
                        "_id": stats_document_id(path_id, timestamp),
                        "path_id": path_id,
                        "server_id": server_id,
                        "timestamp_ms": timestamp,
                        "hop_count": rng.randint(2, 7),
                        "isds": [16, 17 + rng.randint(0, 3)],
                        "avg_latency_ms": latency,
                        "min_latency_ms": latency * 0.9,
                        "max_latency_ms": latency * 1.3,
                        "mdev_latency_ms": latency * 0.05,
                        "loss_pct": rng.choice([0.0, 0.0, 0.0, 3.3]),
                        "target_mbps": 12.0,
                        "bw_up_small_mbps": rng.uniform(4.0, 12.0),
                        "bw_down_small_mbps": rng.uniform(4.0, 12.0),
                        "bw_up_mtu_mbps": rng.uniform(8.0, 12.0),
                        "bw_down_mtu_mbps": rng.uniform(8.0, 12.0),
                    }
                )
            batches.append(batch)
    return batches


def _load(indexed: bool) -> Collection:
    coll = Collection("paths_stats")
    if indexed:
        coll.create_index("path_id")
        coll.create_index([("server_id", 1), ("timestamp_ms", 1)])
    for batch in _campaign_documents():
        coll.insert_many(batch)
    return coll


def _time_query(
    coll: Collection, flt: Dict[str, Any], *, repeats: int, keep_cache: bool
) -> float:
    """Median seconds per ``find(flt)``; cache cleared unless kept warm."""
    if keep_cache:
        coll.find(flt)  # warm the entry
    samples = []
    for _ in range(repeats):
        if not keep_cache:
            coll.cache.clear()
        start = time.perf_counter()
        docs = coll.find(flt)
        samples.append(time.perf_counter() - start)
        assert docs, "hot-path query must match documents"
    samples.sort()
    return samples[len(samples) // 2]


def _run() -> Dict[str, Any]:
    scan_coll = _load(indexed=False)
    idx_coll = _load(indexed=True)
    total_docs = ITERATIONS * DESTINATIONS * PATHS_PER_DESTINATION

    # The selection engine's window: one destination, last iteration.
    last_round_start = BASE_MS + (ITERATIONS - 1) * DESTINATIONS * (
        PATHS_PER_DESTINATION * STEP_MS
    )
    flt = {"server_id": 3, "timestamp_ms": {"$gte": last_round_start}}

    scan_s = _time_query(scan_coll, flt, repeats=9, keep_cache=False)
    idx_s = _time_query(idx_coll, flt, repeats=9, keep_cache=False)
    cached_s = _time_query(idx_coll, flt, repeats=9, keep_cache=True)

    scan_plan = scan_coll.explain(flt)
    idx_plan = idx_coll.explain(flt)
    return {
        "total_docs": total_docs,
        "filter": flt,
        "scan_s": scan_s,
        "idx_s": idx_s,
        "cached_s": cached_s,
        "scan_plan": scan_plan,
        "idx_plan": idx_plan,
    }


def test_query_planner_speedups(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    scan_s, idx_s, cached_s = (
        result["scan_s"], result["idx_s"], result["cached_s"],
    )
    idx_speedup = scan_s / idx_s
    cached_speedup = scan_s / cached_s

    # Plan shapes: the un-indexed collection must COLLSCAN everything,
    # the indexed one must IXSCAN the compound index and examine only
    # the one destination's recent slice.
    scan_stage = result["scan_plan"]["winningPlan"]["inputStage"]
    idx_stage = result["idx_plan"]["winningPlan"]["inputStage"]
    assert scan_stage["stage"] == "COLLSCAN"
    assert idx_stage["stage"] == "IXSCAN"
    assert idx_stage["indexName"] == "server_id_1_timestamp_ms_1"
    scan_examined = result["scan_plan"]["executionStats"]["docsExamined"]
    idx_examined = result["idx_plan"]["executionStats"]["docsExamined"]
    assert scan_examined == result["total_docs"]
    assert idx_examined <= PATHS_PER_DESTINATION * ITERATIONS
    assert idx_examined < scan_examined / 5

    # The ISSUE's acceptance floors.
    assert idx_speedup >= 5.0, f"indexed only {idx_speedup:.1f}x over scan"
    assert cached_speedup >= 20.0, f"cached only {cached_speedup:.1f}x over scan"

    lines = [
        "best-path hot-path latency (median of 9, "
        f"{result['total_docs']} docs, 30-iteration campaign shape)",
        f"  filter: {result['filter']}",
        f"  {'regime':10s} {'latency':>12s} {'examined':>9s} {'speedup':>8s}",
        f"  {'COLLSCAN':10s} {scan_s * 1e3:9.3f} ms {scan_examined:9d} "
        f"{1.0:7.1f}x",
        f"  {'IXSCAN':10s} {idx_s * 1e3:9.3f} ms {idx_examined:9d} "
        f"{idx_speedup:7.1f}x",
        f"  {'cached':10s} {cached_s * 1e3:9.3f} ms {0:9d} "
        f"{cached_speedup:7.1f}x",
        f"  index: {idx_stage['indexName']} "
        f"(bounds {idx_stage.get('indexBounds')})",
    ]
    write_figure("query_planner.txt", "\n".join(lines))
