"""Bench + regeneration of Figure 4 (server reachability histogram)."""

import pytest

from benchmarks.conftest import BENCH_SEED, write_figure
from repro.experiments import fig4


def test_fig4_reachability(benchmark):
    result = benchmark(lambda: fig4.run(seed=BENCH_SEED))
    r = result.reachability

    # Paper shape: 21 reachable, mean ~5.66 hops, ~70% within 6 hops.
    assert r.reachable == 21
    assert r.mean_path_length == pytest.approx(5.66, abs=0.25)
    assert 0.6 <= r.fraction_within(6) <= 0.85

    write_figure("fig4.txt", result.format_text())
