"""Bench + regeneration of Figure 8 (bandwidth @ 150 Mbps — the reversal)."""

from benchmarks.conftest import BENCH_ITERATIONS, BENCH_SEED, write_figure
from repro.experiments import fig7, fig8


def test_fig8_bandwidth_150mbps(benchmark):
    result = benchmark.pedantic(
        lambda: fig8.run(iterations=BENCH_ITERATIONS, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    s = result.summary

    # Paper shape: the 12 Mbps trend REVERSES — 64 B beats MTU in both
    # directions, and everything sits far below the 150 Mbps target.
    assert not s.mtu_beats_small
    assert s.mean_down_small > s.mean_down_mtu
    assert s.mean_up_small > s.mean_up_mtu
    assert s.downstream_beats_upstream
    assert max(s.mean_down_small, s.mean_down_mtu) < 30.0

    write_figure("fig8.txt", result.format_text())


def test_fig7_fig8_crossover(benchmark):
    """The crossover itself: MTU wins at 12 Mbps, loses at 150 Mbps."""

    def both():
        r7 = fig7.run(iterations=2, seed=BENCH_SEED)
        r8 = fig8.run(iterations=2, seed=BENCH_SEED)
        return r7.summary, r8.summary

    s7, s8 = benchmark.pedantic(both, rounds=1, iterations=1)
    assert s7.mtu_beats_small and not s8.mtu_beats_small
