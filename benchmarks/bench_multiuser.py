"""Bench of the multi-user contention study (extension of §1)."""

from benchmarks.conftest import BENCH_SEED, write_figure
from repro.experiments import multiuser


def test_multiuser_contention(benchmark):
    result = benchmark.pedantic(
        lambda: multiuser.run(seed=BENCH_SEED), rounds=1, iterations=1
    )

    # Shape: per-user goodput collapses with user count, the aggregate
    # saturates below the access capacity, and spreading beats selfish
    # assignment on fairness under contention.
    assert result.point(8, "selfish").mean_mbps < result.point(1, "selfish").mean_mbps
    assert all(p.aggregate_mbps < 40.0 for p in result.points)
    assert (
        result.point(8, "spread").fairness
        >= result.point(8, "selfish").fairness - 0.1
    )

    write_figure("multiuser.txt", result.format_text())
