"""Shared benchmark fixtures.

Benchmarks double as the figure-regeneration harness: each bench runs
its experiment, asserts the paper's qualitative shape, writes the
figure's text table under ``benchmarks/output/`` and reports timing via
pytest-benchmark.
"""

from __future__ import annotations

import os

import pytest

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")

#: Iterations per figure campaign.  The paper gathered ~3000 samples;
#: benches default to a lighter load so the whole harness stays fast.
BENCH_ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "5"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20231112"))


def write_figure(name: str, text: str) -> None:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, name), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")


@pytest.fixture(scope="session")
def ireland_world():
    """One shared Ireland campaign for the Fig 5/6 benches."""
    from repro.experiments.world import run_campaign

    return run_campaign([1], iterations=BENCH_ITERATIONS, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def scionlab_host():
    from repro.scion.snet import ScionHost

    return ScionHost.scionlab(seed=BENCH_SEED)
