"""Ablation bench: user-driven (measurement-based) selection vs the
control plane's default hop-count ranking, under a transient congestion
episode — quantifying the paper's core premise that the stored
measurements are what make path control *useful*.
"""

from benchmarks.conftest import BENCH_SEED, write_figure
from repro.experiments import ablation_selection


def test_selection_vs_default_ranking(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_selection.run(rounds=6, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )

    # The default strategy rides its pinned path into the congestion;
    # the measurement-driven strategy routes around it.
    assert result.disturbed_delivery_rate("default") < 0.05
    assert result.disturbed_delivery_rate("upin") > 0.9
    assert result.switches("default") == 0
    assert result.switches("upin") >= 1

    write_figure("ablation_selection.txt", result.format_text())
