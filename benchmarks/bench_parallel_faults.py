"""Bench: parallel campaign throughput under injected faults (§4.1.2).

Runs the 5-destination study campaign with a 10 % per-flush data-loss
probability plus a one-iteration outage on the first destination, and
checks the graceful-degradation bookkeeping: every batch is either
stored or counted lost, nothing aborts, and the injected-fault tallies
are reflected in the campaign telemetry.
"""

import pytest

from benchmarks.conftest import BENCH_ITERATIONS, BENCH_SEED, write_figure
from repro.docdb.client import DocDBClient
from repro.netsim.network import ServerHealth
from repro.scion.snet import ScionHost
from repro.scionlab.defaults import study_destination_ids
from repro.suite import metrics as m
from repro.suite.cli import seed_servers
from repro.suite.collect import PathsCollector
from repro.suite.config import SuiteConfig
from repro.suite.faults import DataLossFault, FaultPlan, ServerOutage
from repro.suite.parallel import ParallelCampaign
from repro.topology.scionlab import MY_AS, scionlab_network_config

LOSS_PROBABILITY = 0.10


def _faulted_env():
    client = DocDBClient()
    db = client["upin"]
    seed_servers(db)
    host = ScionHost.scionlab(seed=BENCH_SEED)
    dest_ids = study_destination_ids()
    config = SuiteConfig(
        iterations=BENCH_ITERATIONS, destination_ids=dest_ids, max_retries=1
    )
    PathsCollector(host, db, config).collect()
    plan = FaultPlan(
        outages=[ServerOutage(dest_ids[0], 0, 1, ServerHealth.DOWN)],
        data_loss=DataLossFault(probability=LOSS_PROBABILITY, seed=BENCH_SEED),
    )
    return host, db, config, plan


def test_parallel_campaign_under_injected_faults(benchmark):
    def run():
        host, db, config, plan = _faulted_env()
        campaign = ParallelCampaign(
            host.topology, MY_AS, db, config,
            base_config=scionlab_network_config(seed=BENCH_SEED),
            seed=BENCH_SEED,
            faults=plan,
        )
        report = campaign.run(iterations=BENCH_ITERATIONS, max_workers=5)
        return report, plan

    report, plan = benchmark.pedantic(run, rounds=1, iterations=1)

    # Graceful degradation: faults were really injected, nothing aborted.
    assert not report.failed_destinations
    assert plan.injected_outages >= 1
    assert plan.injected_losses >= 1
    assert report.stats_lost > 0
    assert report.stats_stored > 0
    # Conservation: every measured path either landed or was counted lost.
    assert report.stats_stored + report.stats_lost == report.paths_tested
    # Telemetry agrees with the report.
    merged = report.metrics
    assert m.counter_value(merged, m.DOCS_LOST) == report.stats_lost
    assert m.counter_value(merged, m.FLUSH_FAILURES) == plan.injected_losses

    wall = m.histogram_stats(merged, m.DEST_WALL_S)
    throughput = (
        report.paths_tested / wall["total"] if wall and wall["total"] else 0.0
    )
    write_figure(
        "parallel_faults.txt",
        f"parallel campaign under {LOSS_PROBABILITY:.0%} data loss: "
        f"{report.stats_stored} stored, {report.stats_lost} lost, "
        f"{plan.injected_outages} outages, {plan.injected_losses} crashed "
        f"flushes, {m.counter_value(merged, m.RETRIES):g} retries, "
        f"{throughput:.0f} path tests / worker-second",
    )
