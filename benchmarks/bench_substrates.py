"""Micro-benchmarks of the substrates the reproduction is built on.

Not figures from the paper — these keep the simulator and the document
store honest about their own performance (profiling-first workflow).
"""

import pytest

from repro.docdb.client import DocDBClient
from repro.netsim.packet import PacketSpec
from repro.scion.beaconing import Beaconer
from repro.scion.combinator import combine_paths
from repro.topology.scionlab import build_scionlab_world


@pytest.fixture(scope="module")
def world():
    return build_scionlab_world()


def test_bench_topology_build(benchmark):
    topo = benchmark(build_scionlab_world)
    assert len(topo) == 36


def test_bench_path_combination(benchmark, world):
    def run():
        beaconer = Beaconer(world)  # cold caches each round
        return combine_paths(beaconer, "17-ffaa:1:e01", "16-ffaa:0:1003")

    paths = benchmark(run)
    assert len(paths) == 42  # all ranked paths before the -m cap


def test_bench_ping_probe(benchmark, scionlab_host):
    path = scionlab_host.paths("16-ffaa:0:1002", max_paths=1)[0]
    traversals = path.traversals(scionlab_host.topology)
    packet = PacketSpec(payload_bytes=16, n_hops=path.hop_count)

    result = benchmark(
        lambda: scionlab_host.network.probe_roundtrip(traversals, packet, 1.0)
    )
    assert result.rtt_ms is None or result.rtt_ms > 0


def test_bench_fluid_transfer(benchmark, scionlab_host):
    path = scionlab_host.paths("19-ffaa:0:1303", max_paths=1)[0]
    traversals = path.traversals(scionlab_host.topology)
    packet = PacketSpec(payload_bytes=1472, n_hops=path.hop_count)

    result = benchmark(
        lambda: scionlab_host.network.fluid_transfer(
            traversals, 12e6, packet, 3.0, 100.0
        )
    )
    assert result.achieved_bps > 0


def test_bench_docdb_indexed_query(benchmark):
    coll = DocDBClient()["bench"]["stats"]
    coll.create_index("server_id")
    coll.create_index("avg_latency_ms")
    coll.insert_many(
        [
            {"_id": i, "server_id": i % 21 + 1, "avg_latency_ms": float(i % 400)}
            for i in range(5000)
        ]
    )

    def query():
        return coll.find(
            {"server_id": 2, "avg_latency_ms": {"$lt": 100}},
            sort=[("avg_latency_ms", 1)],
            limit=10,
        )

    docs = benchmark(query)
    assert docs and all(d["server_id"] == 2 for d in docs)


def test_bench_docdb_aggregation(benchmark):
    coll = DocDBClient()["bench"]["stats"]
    coll.insert_many(
        [
            {"_id": i, "path_id": f"2_{i % 30}", "avg_latency_ms": float(i % 200)}
            for i in range(3000)
        ]
    )

    def aggregate():
        return coll.aggregate(
            [
                {
                    "$group": {
                        "_id": "$path_id",
                        "avg": {"$avg": "$avg_latency_ms"},
                        "n": {"$sum": 1},
                    }
                },
                {"$sort": {"avg": 1}},
            ]
        )

    groups = benchmark(aggregate)
    assert len(groups) == 30


def test_bench_whatif_policy_sweep(benchmark, scionlab_host):
    """Full 21-destination diversity evaluation for one exclusion policy."""
    from repro.analysis.whatif import ExclusionPolicy, path_diversity

    policy = ExclusionPolicy.make(countries=["US", "SG"])
    result = benchmark(lambda: path_diversity(scionlab_host, policy))
    assert result.reachable_count < 21
    assert result.diversity_of(1).reachable


def test_bench_monitoring_round(benchmark):
    """One scheduler round (collect + measure one destination)."""
    from repro.docdb.client import DocDBClient
    from repro.scion.snet import ScionHost
    from repro.suite.cli import seed_servers
    from repro.suite.config import SuiteConfig
    from repro.suite.scheduler import MonitoringScheduler

    def round_once():
        client = DocDBClient()
        db = client["upin"]
        seed_servers(db)
        host = ScionHost.scionlab(seed=1)
        config = SuiteConfig(iterations=1, destination_ids=[3])
        return MonitoringScheduler(host, db, config, period_s=600.0).run(rounds=1)

    report = benchmark.pedantic(round_once, rounds=1, iterations=1)
    assert report.stats_stored == 6
