"""Bench of the flow health monitor's failover path.

Two questions the monitor must answer cheaply:

* **detection→recovery latency** — once probes start breaching, how
  much simulated time passes before the flow is on a healthy path
  again?  The scripted outage scenario journals it per failover.
* **per-round overhead** — the monitor rides every scheduler round;
  its wall-clock cost must scale gracefully with the number of
  monitored flows.  Measured at 10/100/1000 flows via the scenario's
  ``extra_flows`` knob.

The table lands in ``benchmarks/output/monitor_failover.txt``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BENCH_SEED, write_figure
from repro.monitor.scenario import run_outage_scenario

ROUNDS = 8
FLOW_COUNTS = (10, 100, 1000)


def _run_scaled(extra_flows: int):
    start = time.perf_counter()
    scenario = run_outage_scenario(
        seed=BENCH_SEED, rounds=ROUNDS, extra_flows=extra_flows
    )
    wall_s = time.perf_counter() - start
    return scenario, wall_s


def test_monitor_failover(benchmark):
    scenario = benchmark.pedantic(
        lambda: run_outage_scenario(seed=BENCH_SEED, rounds=ROUNDS),
        rounds=1,
        iterations=1,
    )

    failovers = scenario.journal.failovers()
    assert len(failovers) >= 2, "scripted outage must fail over twice"
    ttrs = [
        doc["detection_to_recovery_s"]
        for doc in failovers
        if doc.get("detection_to_recovery_s") is not None
    ]
    assert ttrs and all(t >= 0.0 for t in ttrs)
    # Hysteresis bounds detection: K-of-N over periodic probes means
    # congestion-triggered repair stays within a couple of rounds.
    assert max(ttrs) <= 2 * scenario.scheduler.period_s
    # Revocations bypass hysteresis and cooldown: repair is immediate.
    forced = [d for d in failovers if "revocation" in d["cause"]]
    assert forced and all(
        d["detection_to_recovery_s"] == 0.0 for d in forced
    )
    # The flow ends the episode healthy.
    assert scenario.monitor.tracker.counts_by_state().get("ok", 0) >= 1

    # -- overhead scaling ----------------------------------------------------
    lines = [
        "flow health monitor: failover latency and per-round overhead",
        f"(seed {BENCH_SEED}, {ROUNDS} rounds, period "
        f"{scenario.scheduler.period_s:.0f} sim s)",
        "",
        "scripted outage (1 monitored flow):",
    ]
    for doc in failovers:
        ttr = doc.get("detection_to_recovery_s")
        ttr_txt = f"{ttr:.2f}" if ttr is not None else "n/a"
        lines.append(
            f"  @{doc['t_s']:7.1f}s {doc['old_path_id']} -> "
            f"{doc['new_path_id']:12s} detection->recovery {ttr_txt:>7s} sim s"
            f"  ({doc['cause']})"
        )
    lines += [
        "",
        "per-round monitor overhead vs monitored flow count:",
        f"  {'flows':>6s} {'wall total':>11s} {'wall/round':>11s} "
        f"{'failovers':>9s} {'journal docs':>12s}",
    ]

    for count in FLOW_COUNTS:
        scaled, wall_s = _run_scaled(extra_flows=count - 1)
        n_fail = len(scaled.journal.failovers())
        n_docs = len(scaled.journal.events())
        lines.append(
            f"  {count:6d} {wall_s:10.2f}s {wall_s / ROUNDS * 1000:9.1f}ms "
            f"{n_fail:9d} {n_docs:12d}"
        )
        # Every scale keeps the scripted episode's qualitative shape.
        assert n_fail >= 1
        assert scaled.monitor.tracker.counts_by_state().get("dead", 0) == 0

    write_figure("monitor_failover.txt", "\n".join(lines))
