"""Bench + regeneration of Figure 6 (latency per ISD set / hop count)."""

from benchmarks.conftest import write_figure
from repro.experiments import fig6


def test_fig6_isd_grouping(benchmark, ireland_world):
    result = benchmark(lambda: fig6.run(world=ireland_world))

    # Paper shape: several (ISD set, hop count) columns; the 7-hop
    # column of the main ISD set is wide; removing long-distance paths
    # compacts it to values comparable with 6 hops.
    assert len(result.all_groups) >= 3
    assert result.spread_shrinks
    six = next(
        g for g in result.filtered_groups
        if g.isds == (16, 17, 19) and g.hop_count == 6
    )
    seven = next(
        g for g in result.filtered_groups
        if g.isds == (16, 17, 19) and g.hop_count == 7
    )
    assert seven.stats.mean < 1.5 * six.stats.mean

    write_figure("fig6.txt", result.format_text())
