"""Bench of the §1 trade-off analysis across the study destinations."""

from benchmarks.conftest import BENCH_SEED, write_figure
from repro.experiments import tradeoff


def test_tradeoff_latency_vs_bandwidth(benchmark):
    result = benchmark.pedantic(
        lambda: tradeoff.run(iterations=4, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )

    # Structural finding: the access link bottlenecks every path, so the
    # bandwidth forfeited by latency-first selection is tiny everywhere,
    # while bandwidth-first can pay large latency (detour paths).
    for server_id in (1, 2, 3, 4, 5):
        cost = result.bandwidth_cost_of_latency_first(server_id)
        assert cost is not None and cost < 1.5

    write_figure("tradeoff.txt", result.format_text())
