"""Bench + regeneration of Figure 7 (bandwidth @ 12 Mbps, Magdeburg)."""

import pytest

from benchmarks.conftest import BENCH_ITERATIONS, BENCH_SEED, write_figure
from repro.experiments import fig7


def test_fig7_bandwidth_12mbps(benchmark):
    result = benchmark.pedantic(
        lambda: fig7.run(iterations=BENCH_ITERATIONS, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    s = result.summary

    # Paper shape: downstream > upstream and MTU > 64 B at 12 Mbps,
    # with MTU close to the target.
    assert s.downstream_beats_upstream
    assert s.mtu_beats_small
    assert s.mean_down_mtu == pytest.approx(12.0, abs=1.5)
    assert s.mean_up_small < s.mean_down_small

    write_figure("fig7.txt", result.format_text())
